#include "sim/engine.h"

#include "common/error.h"

namespace hoh::sim {

EventHandle Engine::schedule(Seconds delay, Callback fn) {
  if (delay < 0.0) {
    throw common::ConfigError("Engine::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(Seconds at, Callback fn) {
  if (at < now_) {
    throw common::ConfigError("Engine::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  callbacks_.emplace(id, std::move(fn));
  queue_.push(Entry{at, next_seq_++, id});
  return EventHandle(id);
}

EventHandle Engine::schedule_periodic(Seconds period, Callback fn) {
  if (period <= 0.0) {
    throw common::ConfigError("Engine::schedule_periodic: period must be > 0");
  }
  const std::uint64_t id = next_id_++;
  periodics_.emplace(id, Periodic{period, std::move(fn)});
  // The periodic's queue entries reuse the same id; firing re-schedules.
  callbacks_.emplace(id, [this, id] {
    auto it = periodics_.find(id);
    if (it == periodics_.end()) return;
    // Re-arm first so the callback can cancel its own series.
    queue_.push(Entry{now_ + it->second.period, next_seq_++, id});
    // Note: callbacks_[id] entry is re-inserted by pop_and_run for
    // periodics; see below.
    it->second.fn();
  });
  queue_.push(Entry{now_ + period, next_seq_++, id});
  return EventHandle(id);
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  bool erased = false;
  if (callbacks_.erase(handle.id_) > 0) {
    ++cancelled_pending_;
    erased = true;
  }
  if (periodics_.erase(handle.id_) > 0) erased = true;
  return erased;
}

bool Engine::pop_and_run() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;  // cancelled
    }
    now_ = e.at;
    const bool periodic = periodics_.count(e.id) > 0;
    Callback fn;
    if (periodic) {
      fn = it->second;  // keep registered for the next firing
    } else {
      fn = std::move(it->second);
      callbacks_.erase(it);
    }
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_and_run()) ++n;
  return n;
}

std::size_t Engine::run_until(Seconds until) {
  std::size_t n = 0;
  for (;;) {
    // Peek for the next live event.
    while (!queue_.empty() && callbacks_.count(queue_.top().id) == 0) {
      queue_.pop();
      if (cancelled_pending_ > 0) --cancelled_pending_;
    }
    if (queue_.empty() || queue_.top().at > until) break;
    if (!pop_and_run()) break;
    ++n;
  }
  if (now_ < until && (queue_.empty() || queue_.top().at > until)) {
    now_ = until;
  }
  return n;
}

bool Engine::step() { return pop_and_run(); }

}  // namespace hoh::sim
