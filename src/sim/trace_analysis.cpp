#include "sim/trace_analysis.h"

#include <algorithm>

#include "common/string_util.h"

namespace hoh::sim {

std::vector<ConcurrencyStep> concurrency_profile(
    const std::vector<TraceSpan>& spans) {
  // Sweep line over begin/end edges; simultaneous edges process ends
  // first so a span ending exactly when another begins does not inflate
  // the peak.
  std::vector<std::pair<common::Seconds, int>> edges;
  edges.reserve(spans.size() * 2);
  for (const auto& s : spans) {
    edges.emplace_back(s.begin, +1);
    edges.emplace_back(s.end, -1);
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // -1 before +1
            });
  std::vector<ConcurrencyStep> out;
  int current = 0;
  for (const auto& [t, delta] : edges) {
    current += delta;
    if (!out.empty() && out.back().time == t) {
      out.back().concurrent = current;
    } else {
      out.push_back(ConcurrencyStep{t, current});
    }
  }
  return out;
}

int peak_concurrency(const std::vector<TraceSpan>& spans) {
  int peak = 0;
  for (const auto& step : concurrency_profile(spans)) {
    peak = std::max(peak, step.concurrent);
  }
  return peak;
}

double utilization(const std::vector<TraceSpan>& spans, int capacity,
                   common::Seconds t0, common::Seconds t1) {
  if (capacity <= 0 || t1 <= t0) return 0.0;
  double busy = 0.0;
  for (const auto& s : spans) {
    const common::Seconds lo = std::max(s.begin, t0);
    const common::Seconds hi = std::min(s.end, t1);
    if (hi > lo) busy += hi - lo;
  }
  return busy / (static_cast<double>(capacity) * (t1 - t0));
}

std::string to_csv(const Trace& trace) {
  std::string out = "time,category,name,attrs\n";
  for (const auto& e : trace.events()) {
    std::string attrs;
    for (const auto& [k, v] : e.attrs) {
      if (!attrs.empty()) attrs += ';';
      attrs += k + "=" + v;
    }
    out += common::strformat("%.6f,%s,%s,%s\n", e.time, e.category.c_str(),
                             e.name.c_str(), attrs.c_str());
  }
  return out;
}

}  // namespace hoh::sim
