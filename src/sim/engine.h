#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"

/// \file engine.h
/// Deterministic discrete-event simulation kernel. All simulated
/// middleware components (batch schedulers, YARN, HDFS, the pilot agent)
/// are actors that schedule callbacks on one Engine; time is virtual and
/// advances only between events. Events scheduled for the same instant
/// fire in submission order, which makes whole-system runs bit-for-bit
/// reproducible.

namespace hoh::sim {

using common::Seconds;

/// Handle for a scheduled event; usable to cancel it.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Single-threaded discrete-event engine.
class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time in seconds.
  Seconds now() const { return now_; }

  /// Schedules \p fn to run \p delay seconds from now (>= 0).
  EventHandle schedule(Seconds delay, Callback fn);

  /// Schedules \p fn at absolute time \p at (>= now()).
  EventHandle schedule_at(Seconds at, Callback fn);

  /// Schedules \p fn every \p period seconds starting after \p period.
  /// The returned handle cancels the whole series.
  ///
  /// Periodic polling is the legacy control plane; new code should prefer
  /// store watches or a DeadlineTimer (see DESIGN.md §10). New call sites
  /// in src/ must be allowlisted in tools/lint/check_concurrency.py.
  EventHandle schedule_periodic(Seconds period, Callback fn);

  /// Cancels a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(EventHandle handle);

  /// Runs until the event queue is empty or \p max_events fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= until; afterwards now() == until if the
  /// queue outlived the horizon (or the last event time otherwise).
  std::size_t run_until(Seconds until);

  /// Executes exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Number of events currently pending. Exact: lazily-cancelled heap
  /// entries are tracked by cancelled_pending_ and excluded.
  std::size_t pending() const { return queue_.size() - cancelled_pending_; }

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Times the heap was compacted (cancelled entries purged).
  std::uint64_t compactions() const { return compactions_; }

  /// Callback slots currently allocated (live events + free-list
  /// capacity); the high-water mark of concurrently pending events.
  std::size_t slot_capacity() const { return slots_.size(); }

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;  // tie-break: FIFO for equal timestamps
    std::uint64_t id;
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap on time
      return a.seq > b.seq;
    }
  };

  /// Pooled callback storage (DESIGN.md §13): events live in a slot
  /// vector recycled through a free list, so scheduling is O(1) with no
  /// per-event heap allocation beyond the callback's own captures. An
  /// event id packs (slot index << 32) | generation; the generation
  /// bumps on every release, so a stale handle (fired or cancelled)
  /// never resolves even after the slot is reused.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;
    bool live = false;
    bool periodic = false;
    Seconds period = 0.0;
  };

  std::uint64_t alloc_slot(Callback fn, bool periodic, Seconds period);
  void release_slot(std::uint32_t index);
  Slot* resolve(std::uint64_t id);

  bool pop_and_run();
  void push_entry(Seconds at, std::uint64_t id);
  void pop_entry();
  /// Drops every heap entry whose callback is gone. Safe mid-callback:
  /// the entry being executed was already popped by pop_and_run.
  void compact();

  Seconds now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t cancelled_pending_ = 0;
  std::vector<Entry> queue_;  // heap ordered by EntryCompare
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

/// One-shot timer whose deadline can be pushed out — the lease/deadline
/// primitive of the watch-mode control plane (agent heartbeat lease, NM
/// liveness lease, quiescent-fallback sweeps). Re-arming replaces any
/// pending firing; the superseded heap entry is lazily cancelled and
/// reclaimed by Engine::compact(). Safe to re-arm from within its own
/// callback (self-re-arming timers); must not be destroyed from within
/// its own callback. The destructor cancels any pending firing.
class DeadlineTimer {
 public:
  DeadlineTimer() = default;
  DeadlineTimer(Engine& engine, Engine::Callback fn);
  ~DeadlineTimer();

  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  /// Late binding for timers that are members of objects constructed
  /// before the engine (or the callback's captures) are available.
  /// Cancels any pending firing from a previous binding.
  void bind(Engine& engine, Engine::Callback fn);

  /// (Re-)arms the timer to fire \p delay seconds from now.
  void arm(Seconds delay);

  /// (Re-)arms the timer to fire at absolute time \p at (>= now()).
  void arm_at(Seconds at);

  /// Cancels the pending firing, if any. Idempotent.
  void cancel();

  bool armed() const { return armed_; }

  /// Absolute fire time of the pending firing (meaningful when armed()).
  Seconds deadline() const { return deadline_; }

 private:
  Engine* engine_ = nullptr;
  Engine::Callback fn_;
  EventHandle event_;
  Seconds deadline_ = 0.0;
  bool armed_ = false;
};

}  // namespace hoh::sim
