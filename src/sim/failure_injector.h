#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sim/trace.h"

/// \file failure_injector.h
/// First-class fault injection on the sim engine. Tests used to call
/// BatchScheduler::fail_node by hand at hand-picked instants; the
/// FailureInjector promotes that into a reproducible subsystem: node
/// crashes, repairs, and slow-node episodes are drawn from a seeded
/// distribution and delivered through callbacks, so the same plan + seed
/// replays the identical fault schedule against any layer (hpc batch
/// scheduler, YARN NodeManagers, pilot agents). hohsim exposes it via a
/// plan-file `failures:` section.

namespace hoh::sim {

/// Stochastic fault schedule parameters. All means are exponential
/// inter-arrival means in simulated seconds; a mean of 0 disables that
/// event class.
struct FailurePlan {
  std::uint64_t seed = 42;

  /// Mean time between node crashes (0 = no crashes).
  Seconds mean_time_to_crash = 0.0;
  /// Mean time from a crash to that node's repair (0 = never repaired).
  Seconds mean_time_to_repair = 0.0;
  /// Mean time between slow-node episodes (0 = none).
  Seconds mean_time_to_slow = 0.0;
  /// Compute slowdown applied during an episode (>= 1.0).
  double slow_factor = 2.0;
  /// Fixed episode length.
  Seconds slow_duration = 60.0;

  /// Stop injecting after this many crashes (0 = unlimited).
  int max_crashes = 0;
  /// No events before this instant (lets the workload ramp up).
  Seconds start_after = 0.0;

  /// Throws common::ConfigError on invalid values.
  void validate() const;
};

/// Injector counters, for plan summaries and experiment results.
struct FailureCounters {
  int crashes = 0;
  int repairs = 0;
  int slow_episodes = 0;
};

/// Schedules crash / repair / slow events over a named node set. The
/// injector owns no cluster state: consumers attach callbacks that apply
/// each event to their layer (e.g. BatchScheduler::fail_node). Node
/// picks and inter-arrival times come from one Rng seeded by the plan,
/// so a (plan, node set) pair fully determines the fault schedule.
class FailureInjector {
 public:
  using NodeHandler = std::function<void(const std::string& node)>;
  using SlowHandler =
      std::function<void(const std::string& node, double factor)>;

  FailureInjector(Engine& engine, FailurePlan plan,
                  std::vector<std::string> nodes);

  /// Optional trace sink; every injected event is recorded under
  /// category "failure".
  void set_trace(Trace* trace) { trace_ = trace; }

  void on_crash(NodeHandler fn) { on_crash_ = std::move(fn); }
  void on_repair(NodeHandler fn) { on_repair_ = std::move(fn); }
  /// Episode start: factor = plan.slow_factor. Episode end re-fires the
  /// handler with factor 1.0.
  void on_slow(SlowHandler fn) { on_slow_ = std::move(fn); }

  /// Starts drawing events from the plan. Idempotent.
  void arm();

  /// Stops all future injections (already-delivered events stand).
  void disarm();

  /// Deterministic manual injections for tests and keystone scenarios:
  /// crash/repair a specific node at an absolute sim time, bypassing the
  /// stochastic draw but going through the same delivery + trace path.
  void schedule_crash(Seconds at, const std::string& node);
  void schedule_repair(Seconds at, const std::string& node);

  const FailureCounters& counters() const { return counters_; }
  bool is_down(const std::string& node) const;
  const std::vector<std::string>& nodes() const { return nodes_; }

 private:
  void arm_next_crash();
  void arm_next_slow();
  void deliver_crash(const std::string& node);
  void deliver_repair(const std::string& node);
  void deliver_slow(const std::string& node);
  /// Picks an up (not crashed) node uniformly; empty when all are down.
  std::string pick_up_node();
  void trace_event(const std::string& name, const std::string& node,
                   std::map<std::string, std::string> extra = {});

  Engine& engine_;
  FailurePlan plan_;
  std::vector<std::string> nodes_;
  common::Rng rng_;
  Trace* trace_ = nullptr;

  NodeHandler on_crash_;
  NodeHandler on_repair_;
  SlowHandler on_slow_;

  std::map<std::string, bool> down_;
  FailureCounters counters_;
  bool armed_ = false;
  EventHandle next_crash_;
  EventHandle next_slow_;
  std::vector<EventHandle> pending_;
};

}  // namespace hoh::sim
