#include "sim/trace.h"

#include <algorithm>

namespace hoh::sim {
namespace {

std::string span_key(const std::string& category, const std::string& name,
                     const std::string& key) {
  return category + "\x1f" + name + "\x1f" + key;
}

}  // namespace

void Trace::record(common::Seconds time, std::string category,
                   std::string name,
                   std::map<std::string, std::string> attrs) {
  if (rollup_enabled(category)) {
    TraceRollup& r = rollups_[{std::move(category), std::move(name)}];
    if (r.count == 0) r.first = time;
    r.last = time;
    ++r.count;
    return;
  }
  events_.push_back(
      TraceEvent{time, std::move(category), std::move(name), std::move(attrs)});
}

void Trace::enable_rollup(const std::string& category) {
  rollup_categories_.insert(category);
}

TraceRollup Trace::rollup(const std::string& category,
                          const std::string& name) const {
  const auto it = rollups_.find({category, name});
  return it == rollups_.end() ? TraceRollup{} : it->second;
}

TraceSpanStats Trace::span_stats(const std::string& category,
                                 const std::string& name) const {
  const auto it = span_stats_.find({category, name});
  return it == span_stats_.end() ? TraceSpanStats{} : it->second;
}

void Trace::begin_span(common::Seconds time, const std::string& category,
                       const std::string& name, const std::string& key) {
  open_spans_[span_key(category, name, key)] = time;
}

void Trace::end_span(common::Seconds time, const std::string& category,
                     const std::string& name, const std::string& key) {
  auto it = open_spans_.find(span_key(category, name, key));
  if (it == open_spans_.end()) return;
  if (rollup_enabled(category)) {
    const common::Seconds duration = time - it->second;
    TraceSpanStats& s = span_stats_[{category, name}];
    if (s.count == 0) {
      s.min = duration;
      s.max = duration;
    } else {
      s.min = std::min(s.min, duration);
      s.max = std::max(s.max, duration);
    }
    s.total += duration;
    ++s.count;
    open_spans_.erase(it);
    return;
  }
  spans_.push_back(TraceSpan{it->second, time, category, name, key});
  open_spans_.erase(it);
}

std::vector<TraceEvent> Trace::find(const std::string& category,
                                    const std::string& name) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.category == category && (name.empty() || e.name == name)) {
      out.push_back(e);
    }
  }
  return out;
}

std::optional<TraceEvent> Trace::first(const std::string& category,
                                       const std::string& name) const {
  if (rollup_enabled(category)) {
    // Synthesize an attribute-free event from the rollup counters.
    const TraceRollup* best = nullptr;
    const std::string* best_name = nullptr;
    for (const auto& [key, r] : rollups_) {
      if (key.first != category || r.count == 0) continue;
      if (!name.empty() && key.second != name) continue;
      if (best == nullptr || r.first < best->first) {
        best = &r;
        best_name = &key.second;
      }
    }
    if (best == nullptr) return std::nullopt;
    return TraceEvent{best->first, category, *best_name, {}};
  }
  for (const auto& e : events_) {
    if (e.category == category && (name.empty() || e.name == name)) return e;
  }
  return std::nullopt;
}

std::optional<TraceEvent> Trace::last(const std::string& category,
                                      const std::string& name) const {
  if (rollup_enabled(category)) {
    const TraceRollup* best = nullptr;
    const std::string* best_name = nullptr;
    for (const auto& [key, r] : rollups_) {
      if (key.first != category || r.count == 0) continue;
      if (!name.empty() && key.second != name) continue;
      if (best == nullptr || r.last > best->last) {
        best = &r;
        best_name = &key.second;
      }
    }
    if (best == nullptr) return std::nullopt;
    return TraceEvent{best->last, category, *best_name, {}};
  }
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->category == category && (name.empty() || it->name == name)) {
      return *it;
    }
  }
  return std::nullopt;
}

std::vector<TraceSpan> Trace::find_spans(const std::string& category,
                                         const std::string& name) const {
  std::vector<TraceSpan> out;
  for (const auto& s : spans_) {
    if (s.category == category && (name.empty() || s.name == name)) {
      out.push_back(s);
    }
  }
  return out;
}

common::Json Trace::to_json() const {
  common::JsonArray arr;
  for (const auto& e : events_) {
    common::JsonObject obj;
    obj["t"] = e.time;
    obj["category"] = e.category;
    obj["name"] = e.name;
    common::JsonObject attrs;
    for (const auto& [k, v] : e.attrs) attrs[k] = v;
    obj["attrs"] = std::move(attrs);
    arr.emplace_back(std::move(obj));
  }
  return common::Json(std::move(arr));
}

void Trace::clear() {
  events_.clear();
  spans_.clear();
  open_spans_.clear();
  rollups_.clear();
  span_stats_.clear();
}

}  // namespace hoh::sim
