#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

/// \file trace_analysis.h
/// Post-run analysis over a Trace: span concurrency profiles, busy-time
/// utilization, and CSV export for offline plotting. Benches use these to
/// report derived metrics (e.g. how many units actually ran in parallel)
/// without instrumenting components further.

namespace hoh::sim {

/// One step of a concurrency timeline: \p concurrent spans were open
/// from \p time until the next step.
struct ConcurrencyStep {
  common::Seconds time = 0.0;
  int concurrent = 0;
};

/// Timeline of how many matching spans were simultaneously open.
std::vector<ConcurrencyStep> concurrency_profile(
    const std::vector<TraceSpan>& spans);

/// Maximum simultaneous open spans.
int peak_concurrency(const std::vector<TraceSpan>& spans);

/// Integral of concurrency over [t0, t1] divided by capacity x (t1-t0):
/// the utilization of a resource with \p capacity slots. Returns 0 for an
/// empty window or capacity <= 0.
double utilization(const std::vector<TraceSpan>& spans, int capacity,
                   common::Seconds t0, common::Seconds t1);

/// Events as "time,category,name,key=value;..." CSV lines (with header).
std::string to_csv(const Trace& trace);

}  // namespace hoh::sim
