#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/units.h"

/// \file trace.h
/// Event trace recorder. Simulated components emit (time, category, name,
/// attributes) records; benches and tests query them to compute derived
/// metrics like "agent start -> first unit executing" without coupling to
/// component internals. Also supports open/close spans for durations.

namespace hoh::sim {

/// One trace record.
struct TraceEvent {
  common::Seconds time = 0.0;
  std::string category;  // e.g. "pilot", "yarn", "unit"
  std::string name;      // e.g. "agent_active", "container_allocated"
  std::map<std::string, std::string> attrs;
};

/// A completed duration span.
struct TraceSpan {
  common::Seconds begin = 0.0;
  common::Seconds end = 0.0;
  std::string category;
  std::string name;
  std::string key;  // entity id the span belongs to

  common::Seconds duration() const { return end - begin; }
};

/// Aggregate kept instead of per-event storage for a rolled-up
/// category: occurrence count plus first/last timestamps per name.
struct TraceRollup {
  std::size_t count = 0;
  common::Seconds first = 0.0;
  common::Seconds last = 0.0;
};

/// Aggregate duration statistics for spans of a rolled-up category.
struct TraceSpanStats {
  std::size_t count = 0;
  common::Seconds total = 0.0;
  common::Seconds min = 0.0;
  common::Seconds max = 0.0;

  common::Seconds mean() const {
    return count == 0 ? 0.0 : total / static_cast<double>(count);
  }
};

/// Append-only trace store.
class Trace {
 public:
  void record(common::Seconds time, std::string category, std::string name,
              std::map<std::string, std::string> attrs = {});

  /// Rollup mode (DESIGN.md §13): a web-scale run emits millions of
  /// "unit" records whose per-event storage dominates peak RSS long
  /// before the model does. A rolled-up category keeps only
  /// per-(category, name) counters {count, first, last} and per-name
  /// span duration stats. For such a category find()/find_spans()
  /// return nothing (attributes are not retained); first()/last()
  /// synthesize attribute-free events from the counters, so coarse
  /// metrics (e.g. time of the last "Done") still work.
  void enable_rollup(const std::string& category);
  bool rollup_enabled(const std::string& category) const {
    return rollup_categories_.count(category) > 0;
  }

  /// Counter for a rolled-up (category, name); count == 0 when absent.
  TraceRollup rollup(const std::string& category,
                     const std::string& name) const;

  /// Span duration stats for a rolled-up (category, name).
  TraceSpanStats span_stats(const std::string& category,
                            const std::string& name) const;

  /// Opens a span keyed by (category, name, key); closing a span that was
  /// never opened is ignored, re-opening overwrites the begin time.
  void begin_span(common::Seconds time, const std::string& category,
                  const std::string& name, const std::string& key);
  void end_span(common::Seconds time, const std::string& category,
                const std::string& name, const std::string& key);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// All events matching category (and name, when non-empty).
  std::vector<TraceEvent> find(const std::string& category,
                               const std::string& name = "") const;

  /// First event matching; nullopt when absent.
  std::optional<TraceEvent> first(const std::string& category,
                                  const std::string& name = "") const;
  std::optional<TraceEvent> last(const std::string& category,
                                 const std::string& name = "") const;

  /// Completed spans matching category/name (name empty = all).
  std::vector<TraceSpan> find_spans(const std::string& category,
                                    const std::string& name = "") const;

  /// Serializes all events to a JSON array (for offline inspection).
  common::Json to_json() const;

  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::vector<TraceSpan> spans_;
  std::map<std::string, common::Seconds> open_spans_;
  std::set<std::string> rollup_categories_;
  std::map<std::pair<std::string, std::string>, TraceRollup> rollups_;
  std::map<std::pair<std::string, std::string>, TraceSpanStats> span_stats_;
};

}  // namespace hoh::sim
