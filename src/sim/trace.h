#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/units.h"

/// \file trace.h
/// Event trace recorder. Simulated components emit (time, category, name,
/// attributes) records; benches and tests query them to compute derived
/// metrics like "agent start -> first unit executing" without coupling to
/// component internals. Also supports open/close spans for durations.

namespace hoh::sim {

/// One trace record.
struct TraceEvent {
  common::Seconds time = 0.0;
  std::string category;  // e.g. "pilot", "yarn", "unit"
  std::string name;      // e.g. "agent_active", "container_allocated"
  std::map<std::string, std::string> attrs;
};

/// A completed duration span.
struct TraceSpan {
  common::Seconds begin = 0.0;
  common::Seconds end = 0.0;
  std::string category;
  std::string name;
  std::string key;  // entity id the span belongs to

  common::Seconds duration() const { return end - begin; }
};

/// Append-only trace store.
class Trace {
 public:
  void record(common::Seconds time, std::string category, std::string name,
              std::map<std::string, std::string> attrs = {});

  /// Opens a span keyed by (category, name, key); closing a span that was
  /// never opened is ignored, re-opening overwrites the begin time.
  void begin_span(common::Seconds time, const std::string& category,
                  const std::string& name, const std::string& key);
  void end_span(common::Seconds time, const std::string& category,
                const std::string& name, const std::string& key);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// All events matching category (and name, when non-empty).
  std::vector<TraceEvent> find(const std::string& category,
                               const std::string& name = "") const;

  /// First event matching; nullopt when absent.
  std::optional<TraceEvent> first(const std::string& category,
                                  const std::string& name = "") const;
  std::optional<TraceEvent> last(const std::string& category,
                                 const std::string& name = "") const;

  /// Completed spans matching category/name (name empty = all).
  std::vector<TraceSpan> find_spans(const std::string& category,
                                    const std::string& name = "") const;

  /// Serializes all events to a JSON array (for offline inspection).
  common::Json to_json() const;

  void clear();

 private:
  std::vector<TraceEvent> events_;
  std::vector<TraceSpan> spans_;
  std::map<std::string, common::Seconds> open_spans_;
};

}  // namespace hoh::sim
