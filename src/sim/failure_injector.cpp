#include "sim/failure_injector.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace hoh::sim {

void FailurePlan::validate() const {
  if (mean_time_to_crash < 0.0 || mean_time_to_repair < 0.0 ||
      mean_time_to_slow < 0.0) {
    throw common::ConfigError("FailurePlan: means must be >= 0");
  }
  if (slow_factor < 1.0) {
    throw common::ConfigError("FailurePlan: slow_factor must be >= 1");
  }
  if (slow_duration < 0.0 || start_after < 0.0) {
    throw common::ConfigError(
        "FailurePlan: slow_duration/start_after must be >= 0");
  }
  if (max_crashes < 0) {
    throw common::ConfigError("FailurePlan: max_crashes must be >= 0");
  }
}

FailureInjector::FailureInjector(Engine& engine, FailurePlan plan,
                                 std::vector<std::string> nodes)
    : engine_(engine),
      plan_(plan),
      nodes_(std::move(nodes)),
      rng_(plan.seed) {
  plan_.validate();
  if (nodes_.empty()) {
    throw common::ConfigError("FailureInjector: node set must not be empty");
  }
  for (const auto& n : nodes_) down_[n] = false;
}

void FailureInjector::arm() {
  if (armed_) return;
  armed_ = true;
  arm_next_crash();
  arm_next_slow();
}

void FailureInjector::disarm() {
  armed_ = false;
  engine_.cancel(next_crash_);
  engine_.cancel(next_slow_);
  for (auto& h : pending_) engine_.cancel(h);
  pending_.clear();
}

void FailureInjector::arm_next_crash() {
  if (!armed_ || plan_.mean_time_to_crash <= 0.0) return;
  if (plan_.max_crashes > 0 && counters_.crashes >= plan_.max_crashes) return;
  Seconds delay = rng_.exponential(plan_.mean_time_to_crash);
  const Seconds at = std::max(engine_.now() + delay, plan_.start_after);
  next_crash_ = engine_.schedule_at(at, [this] {
    const std::string node = pick_up_node();
    if (!node.empty()) deliver_crash(node);
    arm_next_crash();
  });
}

void FailureInjector::arm_next_slow() {
  if (!armed_ || plan_.mean_time_to_slow <= 0.0) return;
  Seconds delay = rng_.exponential(plan_.mean_time_to_slow);
  const Seconds at = std::max(engine_.now() + delay, plan_.start_after);
  next_slow_ = engine_.schedule_at(at, [this] {
    const std::string node = pick_up_node();
    if (!node.empty()) deliver_slow(node);
    arm_next_slow();
  });
}

void FailureInjector::schedule_crash(Seconds at, const std::string& node) {
  pending_.push_back(engine_.schedule_at(at, [this, node] {
    if (!down_.count(node) || down_[node]) return;
    deliver_crash(node);
  }));
}

void FailureInjector::schedule_repair(Seconds at, const std::string& node) {
  pending_.push_back(engine_.schedule_at(at, [this, node] {
    if (!down_.count(node) || !down_[node]) return;
    deliver_repair(node);
  }));
}

void FailureInjector::deliver_crash(const std::string& node) {
  down_[node] = true;
  ++counters_.crashes;
  trace_event("node_crash", node,
              {{"crash_index", std::to_string(counters_.crashes)}});
  if (on_crash_) on_crash_(node);
  if (plan_.mean_time_to_repair > 0.0) {
    const Seconds delay = rng_.exponential(plan_.mean_time_to_repair);
    pending_.push_back(engine_.schedule(delay, [this, node] {
      if (down_.count(node) && down_[node]) deliver_repair(node);
    }));
  }
}

void FailureInjector::deliver_repair(const std::string& node) {
  down_[node] = false;
  ++counters_.repairs;
  trace_event("node_repair", node);
  if (on_repair_) on_repair_(node);
}

void FailureInjector::deliver_slow(const std::string& node) {
  ++counters_.slow_episodes;
  trace_event("node_slow", node,
              {{"factor", std::to_string(plan_.slow_factor)},
               {"duration", std::to_string(plan_.slow_duration)}});
  if (on_slow_) on_slow_(node, plan_.slow_factor);
  pending_.push_back(engine_.schedule(plan_.slow_duration, [this, node] {
    trace_event("node_slow_end", node);
    if (on_slow_) on_slow_(node, 1.0);
  }));
}

std::string FailureInjector::pick_up_node() {
  std::vector<const std::string*> up;
  up.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (!down_[n]) up.push_back(&n);
  }
  if (up.empty()) return {};
  const auto i = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(up.size()) - 1));
  return *up[i];
}

bool FailureInjector::is_down(const std::string& node) const {
  auto it = down_.find(node);
  return it != down_.end() && it->second;
}

void FailureInjector::trace_event(const std::string& name,
                                  const std::string& node,
                                  std::map<std::string, std::string> extra) {
  if (!trace_) return;
  extra["node"] = node;
  trace_->record(engine_.now(), "failure", name, std::move(extra));
}

}  // namespace hoh::sim
