#pragma once

#include <optional>
#include <string>
#include <vector>

#include "yarn/resource_manager.h"

/// \file yarn_client.h
/// The `yarn` command-line facade the paper's Launch Method shells out to
/// ("the usage of the yarn command line tool for submitting and
/// monitoring applications"): submit (`yarn jar`), list
/// (`yarn application -list`), status, kill, and the per-application log
/// the Task Spawner polls ("For YARN the application log file is used for
/// this purpose").

namespace hoh::yarn {

class YarnClient {
 public:
  explicit YarnClient(ResourceManager& rm) : rm_(rm) {}

  /// `yarn jar <app>` — submits and returns the application id.
  std::string submit(AppDescriptor descriptor) {
    const auto id = rm_.submit_application(std::move(descriptor));
    log_lines_[id].push_back("submitted " + id);
    return id;
  }

  /// `yarn application -status <id>`.
  AppReport status(const std::string& app_id) const {
    return rm_.application(app_id);
  }

  /// `yarn application -list [-appStates <state>]`.
  std::vector<AppReport> list(
      std::optional<AppState> state_filter = std::nullopt) const {
    std::vector<AppReport> out;
    for (const auto& report : rm_.applications()) {
      if (!state_filter.has_value() || report.state == *state_filter) {
        out.push_back(report);
      }
    }
    return out;
  }

  /// `yarn application -kill <id>`.
  void kill(const std::string& app_id) { rm_.kill_application(app_id); }

  /// Appends a line to the application's log (AMs and payloads use this;
  /// the Task Spawner tails it).
  void append_log(const std::string& app_id, const std::string& line) {
    log_lines_[app_id].push_back(line);
  }

  /// `yarn logs -applicationId <id>` — one string per line.
  const std::vector<std::string>& logs(const std::string& app_id) const {
    static const std::vector<std::string> kEmpty;
    auto it = log_lines_.find(app_id);
    return it == log_lines_.end() ? kEmpty : it->second;
  }

 private:
  ResourceManager& rm_;
  std::map<std::string, std::vector<std::string>> log_lines_;
};

}  // namespace hoh::yarn
