#pragma once

#include <string>
#include <vector>

#include "common/control_plane.h"
#include "common/units.h"

/// \file types.h
/// YARN value types: resources, container/application states and the
/// yarn-site.xml style configuration knobs that matter for the paper's
/// measurements.

namespace hoh::net {
class Transport;
}  // namespace hoh::net

namespace hoh::yarn {

/// A YARN resource vector. The paper's agent scheduler "specifically
/// utilizes memory in addition to cores for assigning resource slots" —
/// this is that (memory, vcores) space.
struct Resource {
  common::MemoryMb memory_mb = 1024;
  int vcores = 1;

  friend bool operator==(const Resource&, const Resource&) = default;

  bool fits_in(const Resource& capacity) const {
    return memory_mb <= capacity.memory_mb && vcores <= capacity.vcores;
  }
};

enum class ContainerState {
  kAllocated,   // granted by the scheduler, not yet launched
  kLaunching,   // NM is starting it
  kRunning,
  kCompleted,
  kKilled,
  kPreempted,
};

std::string to_string(ContainerState state);

enum class AppState {
  kSubmitted,    // accepted by the RM, AM container pending
  kAccepted,     // AM container allocated
  kAmLaunching,  // AM container starting
  kRunning,      // AM registered
  kFinished,
  kFailed,
  kKilled,
};

std::string to_string(AppState state);

constexpr bool is_final(AppState s) {
  return s == AppState::kFinished || s == AppState::kFailed ||
         s == AppState::kKilled;
}

/// One outstanding container ask from an Application Master.
struct ContainerRequest {
  Resource resource;
  /// Nodes the AM prefers (data locality). Empty = any node.
  std::vector<std::string> preferred_nodes;
  /// When true (YARN default) the request falls back to any node if the
  /// preferred ones stay busy; when false it waits for them.
  bool relax_locality = true;
};

/// Which pluggable RM scheduler is active
/// (yarn.resourcemanager.scheduler.class).
enum class SchedulerPolicy {
  kCapacity,  // queue shares + starved-queue-first ordering
  kFifo,      // strict submission order across all queues
};

/// The subset of yarn-site.xml that drives observable behaviour.
struct YarnConfig {
  /// Control-plane mode (DESIGN.md §10). kPoll: the RM runs a periodic
  /// scheduler loop (scheduler_interval) whose passes also expire NM
  /// liveness. kWatch: scheduler passes are demand-driven (submission,
  /// AM asks, releases, capacity changes) and NM liveness is tracked by
  /// per-NM lease timers.
  common::ControlPlane control_plane = common::ControlPlane::kPoll;

  Resource minimum_allocation{1024, 1};
  Resource maximum_allocation{8192, 8};

  /// NodeManager advertised capacity; 0 means derive from the node spec
  /// (all cores, 87.5 % of memory — the Hadoop rule of thumb that leaves
  /// room for the OS and daemons).
  common::MemoryMb nm_memory_mb = 0;
  int nm_vcores = 0;

  common::Seconds scheduler_interval = 0.5;  // RM allocation pass cadence
  common::Seconds nm_heartbeat = 1.0;
  common::Seconds container_launch_time = 5.0;  // localization + JVM start

  /// AM containers are heavier: full JVM + protocol bootstrap.
  common::Seconds am_launch_time = 12.0;
  common::Seconds am_register_time = 3.0;
  Resource am_resource{1024, 1};

  bool preemption_enabled = false;

  SchedulerPolicy scheduler_policy = SchedulerPolicy::kCapacity;

  /// yarn.resourcemanager.am.max-attempts: how many times the RM
  /// restarts an application's AM after node loss before failing the app.
  int am_max_attempts = 2;

  /// yarn.nm.liveness-monitor.expiry-interval: how long the RM waits
  /// without a heartbeat before declaring an NM lost and killing its
  /// containers. 0 disables liveness monitoring (crashes must then be
  /// reported out of band via ResourceManager::fail_node).
  common::Seconds nm_liveness_timeout = 0.0;

  /// Hadoop's DefaultResourceCalculator schedules on memory only and
  /// oversubscribes vcores (AMs are mostly idle); set false for the
  /// DominantResourceCalculator behaviour that enforces both dimensions.
  bool memory_only_scheduling = true;

  /// Message boundary (DESIGN.md §14): the transport the RM routes its
  /// NM-facing control traffic (allocate / launch / release / liveness
  /// probe) through. Must outlive the ResourceManager. nullptr (the
  /// default) makes the RM own a private InProcessTransport — identical
  /// behaviour, no external wiring needed.
  net::Transport* transport = nullptr;

  /// Rounds a request up to the minimum-allocation multiple the way the
  /// capacity scheduler normalizes asks.
  Resource normalize(const Resource& ask) const;
};

/// One scheduler queue (capacity scheduler configuration).
struct QueueConfig {
  std::string name = "default";
  double capacity = 1.0;  // fraction of cluster resources
};

}  // namespace hoh::yarn
