#include "yarn/node_manager.h"

#include "common/error.h"

namespace hoh::yarn {

std::string to_string(ContainerState state) {
  switch (state) {
    case ContainerState::kAllocated:
      return "ALLOCATED";
    case ContainerState::kLaunching:
      return "LAUNCHING";
    case ContainerState::kRunning:
      return "RUNNING";
    case ContainerState::kCompleted:
      return "COMPLETE";
    case ContainerState::kKilled:
      return "KILLED";
    case ContainerState::kPreempted:
      return "PREEMPTED";
  }
  return "?";
}

std::string to_string(AppState state) {
  switch (state) {
    case AppState::kSubmitted:
      return "SUBMITTED";
    case AppState::kAccepted:
      return "ACCEPTED";
    case AppState::kAmLaunching:
      return "AM_LAUNCHING";
    case AppState::kRunning:
      return "RUNNING";
    case AppState::kFinished:
      return "FINISHED";
    case AppState::kFailed:
      return "FAILED";
    case AppState::kKilled:
      return "KILLED";
  }
  return "?";
}

Resource YarnConfig::normalize(const Resource& ask) const {
  auto round_up = [](std::int64_t v, std::int64_t step) {
    return ((v + step - 1) / step) * step;
  };
  Resource out;
  out.memory_mb = std::max(minimum_allocation.memory_mb,
                           round_up(ask.memory_mb,
                                    minimum_allocation.memory_mb));
  out.vcores = std::max(minimum_allocation.vcores, ask.vcores);
  out.memory_mb = std::min(out.memory_mb, maximum_allocation.memory_mb);
  out.vcores = std::min(out.vcores, maximum_allocation.vcores);
  return out;
}

NodeManager::NodeManager(sim::Engine& engine, const YarnConfig& config,
                         std::shared_ptr<cluster::Node> node)
    : engine_(engine), config_(config), node_(std::move(node)) {
  capacity_.vcores =
      config_.nm_vcores > 0 ? config_.nm_vcores : node_->spec().cores;
  capacity_.memory_mb = config_.nm_memory_mb > 0
                            ? config_.nm_memory_mb
                            : node_->spec().memory_mb * 7 / 8;
}

Resource NodeManager::available() const {
  return Resource{capacity_.memory_mb - in_use_.memory_mb,
                  capacity_.vcores - in_use_.vcores};
}

Resource NodeManager::allocated() const { return in_use_; }

bool NodeManager::can_fit(const Resource& resource) const {
  if (!alive_ || crashed_ || decommissioning_) return false;
  const int cores = config_.memory_only_scheduling ? 0 : resource.vcores;
  const Resource avail = available();
  if (resource.memory_mb > avail.memory_mb) return false;
  if (!config_.memory_only_scheduling && resource.vcores > avail.vcores) {
    return false;
  }
  return node_->fits(cluster::ResourceRequest{cores, resource.memory_mb});
}

bool NodeManager::allocate(const Container& container) {
  if (!can_fit(container.resource)) return false;
  if (containers_.count(container.id) > 0) {
    throw common::StateError("NM: duplicate container id " + container.id);
  }
  const int ledger_cores =
      config_.memory_only_scheduling ? 0 : container.resource.vcores;
  if (!node_->allocate(cluster::ResourceRequest{
          ledger_cores, container.resource.memory_mb})) {
    return false;  // node ledger shared with non-YARN users said no
  }
  in_use_.memory_mb += container.resource.memory_mb;
  in_use_.vcores += container.resource.vcores;
  Container c = container;
  c.node = node_->name();
  c.state = ContainerState::kAllocated;
  containers_.emplace(c.id, std::move(c));
  return true;
}

Container& NodeManager::find(const std::string& container_id) {
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    throw common::NotFoundError("NM " + node_->name() +
                                ": unknown container " + container_id);
  }
  return it->second;
}

void NodeManager::launch(const std::string& container_id,
                         std::function<void()> on_running) {
  Container& c = find(container_id);
  if (c.state != ContainerState::kAllocated) {
    throw common::StateError("NM: container " + container_id +
                             " not in ALLOCATED state");
  }
  c.state = ContainerState::kLaunching;
  const common::Seconds latency =
      c.is_am ? config_.am_launch_time : config_.container_launch_time;
  engine_.schedule(latency, [this, container_id,
                             cb = std::move(on_running)] {
    auto it = containers_.find(container_id);
    if (it == containers_.end() ||
        it->second.state != ContainerState::kLaunching) {
      return;  // killed while launching
    }
    it->second.state = ContainerState::kRunning;
    if (cb) cb();
  });
}

void NodeManager::release(const std::string& container_id,
                          ContainerState final_state) {
  Container& c = find(container_id);
  if (c.state == ContainerState::kCompleted ||
      c.state == ContainerState::kKilled ||
      c.state == ContainerState::kPreempted) {
    return;  // already released
  }
  c.state = final_state;
  in_use_.memory_mb -= c.resource.memory_mb;
  in_use_.vcores -= c.resource.vcores;
  const int ledger_cores =
      config_.memory_only_scheduling ? 0 : c.resource.vcores;
  node_->release(
      cluster::ResourceRequest{ledger_cores, c.resource.memory_mb});
}

bool NodeManager::has_container(const std::string& container_id) const {
  return containers_.count(container_id) > 0;
}

const Container& NodeManager::container(
    const std::string& container_id) const {
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    throw common::NotFoundError("NM " + node_->name() +
                                ": unknown container " + container_id);
  }
  return it->second;
}

std::vector<std::string> NodeManager::live_container_ids() const {
  std::vector<std::string> out;
  for (const auto& [id, c] : containers_) {
    if (c.state == ContainerState::kAllocated ||
        c.state == ContainerState::kLaunching ||
        c.state == ContainerState::kRunning) {
      out.push_back(id);
    }
  }
  return out;
}

void NodeManager::fail() {
  if (!alive_) return;
  alive_ = false;
  for (const auto& id : live_container_ids()) {
    release(id, ContainerState::kKilled);
  }
}

void NodeManager::crash() {
  if (crashed_ || !alive_) return;
  crashed_ = true;
  crash_time_ = engine_.now();
  lost_on_crash_ = live_container_ids();
  for (const auto& id : lost_on_crash_) {
    release(id, ContainerState::kKilled);
  }
}

std::size_t NodeManager::live_count() const {
  std::size_t n = 0;
  for (const auto& [id, c] : containers_) {
    if (c.state == ContainerState::kAllocated ||
        c.state == ContainerState::kLaunching ||
        c.state == ContainerState::kRunning) {
      ++n;
    }
  }
  return n;
}

}  // namespace hoh::yarn
