#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>
#include <string>

#include "cluster/node.h"
#include "sim/engine.h"
#include "yarn/types.h"

/// \file node_manager.h
/// One YARN NodeManager: owns the container table of one node, enforces
/// the advertised (memory, vcores) capacity against the shared
/// cluster::Node ledger, and models container-launch latency
/// (localization + JVM start).

namespace hoh::yarn {

/// Container record kept by its NodeManager.
struct Container {
  std::string id;
  std::string app_id;
  std::string node;
  Resource resource;
  ContainerState state = ContainerState::kAllocated;
  bool is_am = false;
};

class NodeManager {
 public:
  NodeManager(sim::Engine& engine, const YarnConfig& config,
              std::shared_ptr<cluster::Node> node);

  const std::string& node_name() const { return node_->name(); }

  /// Advertised capacity (yarn.nodemanager.resource.*).
  const Resource& capacity() const { return capacity_; }
  Resource available() const;
  Resource allocated() const;

  bool can_fit(const Resource& resource) const;

  /// Reserves resources and creates a container in kAllocated state.
  /// Returns false if it does not fit.
  bool allocate(const Container& container);

  /// Starts an allocated container; \p on_running fires after the launch
  /// latency (AM containers take longer).
  void launch(const std::string& container_id,
              std::function<void()> on_running);

  /// Marks a running/launching container completed (or killed /
  /// preempted) and releases its resources.
  void release(const std::string& container_id, ContainerState final_state);

  bool has_container(const std::string& container_id) const;
  const Container& container(const std::string& container_id) const;

  /// Containers currently tracked (any state); completed ones are
  /// retained for queries.
  std::size_t live_count() const;

  /// Live container ids (for failure propagation).
  std::vector<std::string> live_container_ids() const;

  bool alive() const { return alive_; }

  /// Simulates NM loss (node crash / heartbeat timeout): every live
  /// container is released as KILLED and no further allocations fit.
  void fail();

  /// Silent node crash: the machine drops off the network. Containers
  /// die (resources return to the ledger) and heartbeats stop, but
  /// nobody is notified — the RM only learns of it when its liveness
  /// monitor notices the missing heartbeats and calls fail_node. The
  /// containers lost at the instant of the crash are retained for that
  /// later propagation (lost_on_crash()).
  void crash();

  bool crashed() const { return crashed_; }

  /// Time of the last heartbeat the RM would have seen: now() while the
  /// NM is healthy, frozen at the crash instant afterwards.
  common::Seconds last_heartbeat() const {
    return crashed_ ? crash_time_ : engine_.now();
  }

  /// Container ids that were live when crash() hit (empty otherwise).
  const std::vector<std::string>& lost_on_crash() const {
    return lost_on_crash_;
  }

  /// Rejoins a failed NM (recommissioning); capacity becomes usable on
  /// the next scheduler pass. Also clears a decommission mark.
  void recover() {
    alive_ = true;
    decommissioning_ = false;
    crashed_ = false;
    lost_on_crash_.clear();
  }

  /// Graceful-decommission mark: the scheduler stops placing new
  /// containers here while running ones finish undisturbed.
  void start_decommission() { decommissioning_ = true; }
  bool decommissioning() const { return decommissioning_; }

 private:
  Container& find(const std::string& container_id);

  sim::Engine& engine_;
  const YarnConfig& config_;
  std::shared_ptr<cluster::Node> node_;
  Resource capacity_;
  Resource in_use_{0, 0};
  bool alive_ = true;
  bool decommissioning_ = false;
  bool crashed_ = false;
  common::Seconds crash_time_ = 0.0;
  std::vector<std::string> lost_on_crash_;
  std::map<std::string, Container> containers_;
};

}  // namespace hoh::yarn
