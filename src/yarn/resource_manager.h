#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "common/json.h"
#include "net/transport.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "yarn/node_manager.h"
#include "yarn/types.h"

/// \file resource_manager.h
/// The YARN ResourceManager: application lifecycle (including the
/// two-stage AM-then-task-container allocation the paper identifies as
/// the Compute-Unit startup bottleneck, Fig. 5 inset), a capacity
/// scheduler over (memory, vcores), optional preemption, and REST-style
/// cluster metrics (the paper's agent scheduler consumes exactly these:
/// "updated cluster state information ... obtained via the Resource
/// Manager's REST API").

namespace hoh::yarn {

class ApplicationMaster;

/// RM-side application record.
struct AppReport {
  std::string id;
  std::string name;
  std::string queue;
  AppState state = AppState::kSubmitted;
  common::Seconds submit_time = 0.0;
  common::Seconds start_time = 0.0;   // AM registered
  common::Seconds finish_time = 0.0;
  std::string am_node;
};

/// What a client submits. \p on_am_start is the Application Master's
/// main(): it runs once the AM container is up and registered.
struct AppDescriptor {
  std::string name = "app";
  std::string queue = "default";
  Resource am_resource{1024, 1};
  std::function<void(ApplicationMaster&)> on_am_start;
  /// Completion notification: fires exactly once, synchronously, when the
  /// application reaches a final state (Finished, Failed or Killed) with
  /// the final report — drivers get pushed the outcome instead of polling
  /// application(). Fired after the RM's own bookkeeping (containers
  /// released, pending asks dropped).
  std::function<void(const AppReport&)> on_finished;
};

class ResourceManager {
 public:
  /// Brings up one NodeManager per allocation node. The RM starts its
  /// scheduler loop immediately.
  ResourceManager(sim::Engine& engine, const cluster::Allocation& allocation,
                  YarnConfig config = {},
                  std::vector<QueueConfig> queues = {{"default", 1.0}});
  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  const YarnConfig& config() const { return config_; }

  /// Submits an application; returns the application id. The AM container
  /// request enters the target queue immediately; allocation happens on a
  /// scheduler pass.
  std::string submit_application(AppDescriptor descriptor);

  /// Kills an application: AM and all its containers are released.
  void kill_application(const std::string& app_id);

  AppReport application(const std::string& app_id) const;
  std::vector<AppReport> applications() const;

  /// The AM handle of a running application (for in-process callers).
  ApplicationMaster& application_master(const std::string& app_id);

  /// REST GET /ws/v1/cluster/metrics equivalent.
  common::Json cluster_metrics() const;

  /// REST GET /ws/v1/cluster/scheduler equivalent (per-queue usage).
  common::Json scheduler_info() const;

  /// Live capacity: sums NMs that are alive and not decommissioning —
  /// the single capacity query schedulers and agent backpressure use, so
  /// totals stay consistent as nodes join and leave mid-run.
  Resource total_capacity() const;
  Resource total_allocated() const;

  std::size_t node_count() const { return node_managers_.size(); }
  std::size_t live_node_count() const;
  NodeManager& node_manager(const std::string& node);

  /// Returns a failed node to service (recommissioning).
  void recover_node(const std::string& node);

  /// Registers a NodeManager on a freshly granted allocation node (elastic
  /// grow). Its capacity becomes placeable on the next scheduler pass.
  void add_node(std::shared_ptr<cluster::Node> node);

  /// Marks a node decommissioning: no new containers are placed there;
  /// running ones finish undisturbed (graceful shrink).
  void decommission_node(const std::string& node);

  /// Deregisters a NodeManager (drained or dead) — the final step of a
  /// shrink. Throws StateError while the NM still hosts live containers.
  void remove_node(const std::string& node);

  /// REST GET /ws/v1/cluster/apps equivalent.
  common::Json apps_json() const;

  /// Simulates loss of a node: its containers die; applications whose
  /// task containers were lost are notified via the AM's preemption/loss
  /// callback; applications whose *AM* was lost get a new attempt (up to
  /// config().am_max_attempts) or fail. Also the recovery path the
  /// liveness monitor takes when a silently crashed NM times out.
  void fail_node(const std::string& node);

  /// Optional trace sink: detection and recovery decisions are recorded
  /// under category "yarn" (nm_lost, am_restart, app_failed,
  /// task_container_lost).
  void set_trace(sim::Trace* trace) { trace_ = trace; }

  /// State of a container anywhere in the cluster; nullopt once its NM
  /// is gone or the id was never allocated. Drivers use this to tell a
  /// live task from one whose container died without a callback.
  std::optional<ContainerState> container_state(
      const std::string& container_id) const;

  /// Observer for capacity-scheduler preemption decisions: fires once
  /// per preempted container, after the NM released it and before the
  /// AM's preempted callback ran, with (app_id, container_id, queue).
  /// Cross-layer accountants (the tenant gateway's usage ledger, drain
  /// diagnostics) subscribe here instead of wrapping every AM callback.
  using PreemptionHook = std::function<void(
      const std::string& app_id, const std::string& container_id,
      const std::string& queue)>;
  void set_preemption_hook(PreemptionHook hook) {
    preemption_hook_ = std::move(hook);
  }

  /// Stops the scheduler loop (cluster teardown).
  void shutdown();

  /// The simulation engine this RM runs on (for payload drivers that
  /// schedule task durations, e.g. the MR-over-YARN driver).
  sim::Engine& engine() { return engine_; }

 private:
  friend class ApplicationMaster;

  struct PendingAsk {
    std::string app_id;
    ContainerRequest request;
    bool is_am = false;
    std::function<void(const Container&)> on_allocated;  // task asks only
    std::uint64_t seq = 0;
  };

  struct AppRecord {
    AppDescriptor descriptor;
    AppReport report;
    std::unique_ptr<ApplicationMaster> am;
    std::string am_container_id;
    std::vector<std::string> container_ids;  // task containers
    int attempt = 1;                         // AM attempt number
  };

  AppRecord& find_app(const std::string& app_id);
  const AppRecord& find_app(const std::string& app_id) const;

  /// One allocation pass of the capacity scheduler.
  void scheduler_pass();
  void preemption_pass();

  /// Watch plane: request a (deduplicated) scheduler pass one
  /// scheduler_interval from now — the RM's allocation latency. Called on
  /// every event that changes demand or capacity; a no-op in poll mode.
  void request_scheduler_pass();

  /// Expires NMs whose heartbeats stopped nm_liveness_timeout ago.
  void liveness_pass();

  /// Watch plane: per-NM liveness lease. The timer fires at
  /// last_heartbeat + nm_liveness_timeout; a fresh heartbeat re-arms it,
  /// a stale one fails the node — detection at exactly crash + timeout.
  void arm_liveness_lease(const std::string& node);
  void check_liveness_lease(const std::string& node);
  NodeManager* find_nm(const std::string& node);
  void trace_event(const std::string& name,
                   std::map<std::string, std::string> attrs);

  /// Attempts to place one ask; returns the hosting NM or nullptr.
  NodeManager* try_place(const PendingAsk& ask, Container& out);

  /// Queue usage as a fraction of its capacity share (memory-dominant).
  double queue_usage_ratio(const std::string& queue) const;
  common::MemoryMb queue_used_mb(const std::string& queue) const;

  void on_am_container_running(const std::string& app_id);
  void finish_application(const std::string& app_id, AppState final_state);

  // --- Message boundary (DESIGN.md §14) ---
  // The RM↔NM control plane crosses the session transport as typed
  // messages: AllocateRequest/-Reply, LaunchRequest (completion comes
  // back as a correlated ContainerRunning), ReleaseRequest and the
  // watch-plane liveness NodeProbe/NodeStatus. Scheduler *reads*
  // (can_fit/available/capacity and the poll-mode liveness scan) stay
  // direct: they model the RM's heartbeat-fed local ledger, exactly as
  // in real YARN, and stay O(1) per lookup at 10k nodes.

  /// Registers "<prefix>.nm" (NM-facing plane) and "<prefix>.rm"
  /// (launch completions) on the active transport.
  void register_endpoints();
  net::Envelope handle_nm_message(const net::Envelope& request);
  bool transport_allocate(NodeManager& nm, const Container& container);
  void transport_launch(const std::string& node,
                        const std::string& container_id,
                        std::function<void()> on_running);
  void transport_release(NodeManager& nm, const std::string& container_id,
                         ContainerState final_state);
  common::Seconds transport_last_heartbeat(const std::string& node);

  // --- ApplicationMaster backend (called via friend) ---
  void am_request_containers(const std::string& app_id, int count,
                             const ContainerRequest& request,
                             std::function<void(const Container&)> cb);
  void am_launch_container(const std::string& app_id,
                           const std::string& container_id,
                           std::function<void()> on_running);
  void am_release_container(const std::string& app_id,
                            const std::string& container_id,
                            ContainerState final_state);
  void am_unregister(const std::string& app_id, bool success);

  NodeManager* nm_hosting(const std::string& container_id);

  sim::Engine& engine_;
  YarnConfig config_;
  /// Active transport: config().transport, or owned_transport_ when the
  /// RM runs standalone.
  net::Transport* transport_ = nullptr;
  std::unique_ptr<net::Transport> owned_transport_;
  std::string nm_endpoint_;
  std::string rm_endpoint_;
  /// Launch-completion correlation: LaunchRequest carries an id; the NM's
  /// completion crosses back as ContainerRunning{id} and resolves here.
  std::map<std::uint64_t, std::function<void()>> pending_running_;
  std::uint64_t next_correlation_ = 1;
  sim::Trace* trace_ = nullptr;
  PreemptionHook preemption_hook_;
  std::vector<QueueConfig> queues_;
  std::vector<std::unique_ptr<NodeManager>> node_managers_;
  /// Free-list style indexes (DESIGN.md §13): NM by node name and
  /// hosting NM by container id, so placement, liveness and release
  /// paths stop walking every NodeManager per lookup at 10k nodes.
  std::map<std::string, NodeManager*> nm_index_;
  std::map<std::string, NodeManager*> container_host_;
  std::map<std::string, AppRecord> apps_;
  std::map<std::string, std::deque<PendingAsk>> pending_;  // per queue
  sim::EventHandle scheduler_event_;
  // Watch plane: demand-driven pass dedup + per-NM liveness leases.
  bool pass_pending_ = false;
  sim::EventHandle pass_event_;
  std::map<std::string, std::unique_ptr<sim::DeadlineTimer>> liveness_leases_;
  bool shut_down_ = false;
  std::uint64_t next_app_number_ = 1;
  std::uint64_t next_container_number_ = 1;
  std::uint64_t next_ask_seq_ = 1;
  std::uint64_t cluster_timestamp_ = 1454300000;  // fixed epoch for ids
};

}  // namespace hoh::yarn
