#pragma once

#include <memory>

#include "cluster/machine.h"
#include "hdfs/hdfs_cluster.h"
#include "sim/engine.h"
#include "yarn/resource_manager.h"

/// \file yarn_cluster.h
/// A full Hadoop deployment over one allocation: HDFS + YARN RM/NMs.
/// This is exactly what the Mode-I LRM brings up on its nodes ("the node
/// that is running the Agent [is] assigned to run the master daemons: the
/// HDFS Namenode and the YARN Resource Manager").

namespace hoh::yarn {

struct YarnClusterConfig {
  YarnConfig yarn;
  hdfs::HdfsConfig hdfs;
  std::vector<QueueConfig> queues{{"default", 1.0}};
};

/// Owns the HDFS ensemble and the ResourceManager for one node set.
class YarnCluster {
 public:
  YarnCluster(sim::Engine& engine, const cluster::MachineProfile& machine,
              const cluster::Allocation& allocation,
              YarnClusterConfig config = {});

  ResourceManager& resource_manager() { return *rm_; }
  hdfs::HdfsCluster& hdfs() { return *hdfs_; }
  const cluster::Allocation& allocation() const { return allocation_; }
  const cluster::MachineProfile& machine() const { return machine_; }

  /// Stops all daemons (Mode-I teardown before agent exit).
  void shutdown();

 private:
  const cluster::MachineProfile& machine_;
  cluster::Allocation allocation_;
  std::unique_ptr<hdfs::HdfsCluster> hdfs_;
  std::unique_ptr<ResourceManager> rm_;
};

}  // namespace hoh::yarn
