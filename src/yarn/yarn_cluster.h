#pragma once

#include <memory>

#include "cluster/machine.h"
#include "hdfs/hdfs_cluster.h"
#include "sim/engine.h"
#include "yarn/resource_manager.h"

/// \file yarn_cluster.h
/// A full Hadoop deployment over one allocation: HDFS + YARN RM/NMs.
/// This is exactly what the Mode-I LRM brings up on its nodes ("the node
/// that is running the Agent [is] assigned to run the master daemons: the
/// HDFS Namenode and the YARN Resource Manager").

namespace hoh::yarn {

struct YarnClusterConfig {
  YarnConfig yarn;
  hdfs::HdfsConfig hdfs;
  std::vector<QueueConfig> queues{{"default", 1.0}};
};

/// Owns the HDFS ensemble and the ResourceManager for one node set.
class YarnCluster {
 public:
  YarnCluster(sim::Engine& engine, const cluster::MachineProfile& machine,
              const cluster::Allocation& allocation,
              YarnClusterConfig config = {});

  ResourceManager& resource_manager() { return *rm_; }
  hdfs::HdfsCluster& hdfs() { return *hdfs_; }
  const cluster::Allocation& allocation() const { return allocation_; }
  const cluster::MachineProfile& machine() const { return machine_; }

  /// Stops all daemons (Mode-I teardown before agent exit).
  void shutdown();

  /// Elastic grow: registers a NodeManager and a DataNode on each freshly
  /// granted allocation node (the LRM's incremental bootstrap step).
  void add_nodes(const std::vector<std::shared_ptr<cluster::Node>>& nodes);

  /// Elastic shrink, step 1: mark nodes decommissioning so YARN stops
  /// placing containers there and HDFS starts copying blocks off.
  void decommission_nodes(const std::vector<std::string>& names);

  /// True when every named node has no live containers and all its HDFS
  /// blocks are safely replicated elsewhere — the drain barrier.
  bool decommission_complete(const std::vector<std::string>& names);

  /// Elastic shrink, final step: deregister the NM and DataNode of each
  /// drained node and drop it from the cluster's allocation view.
  void remove_nodes(const std::vector<std::string>& names);

 private:
  const cluster::MachineProfile& machine_;
  cluster::Allocation allocation_;
  std::unique_ptr<hdfs::HdfsCluster> hdfs_;
  std::unique_ptr<ResourceManager> rm_;
};

}  // namespace hoh::yarn
