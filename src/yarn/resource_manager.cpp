#include "yarn/resource_manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"
#include "net/message.h"
#include "yarn/application_master.h"

namespace hoh::yarn {

namespace {

/// Session-unique endpoint prefix per RM instance, so several RMs (a
/// dedicated Hadoop environment plus Mode-I pilot clusters) can share
/// one transport. Engine-thread only; the names never enter digests.
std::string next_rm_prefix() {
  static std::uint64_t counter = 0;
  return "rm" + std::to_string(counter++);
}

}  // namespace

ResourceManager::ResourceManager(sim::Engine& engine,
                                 const cluster::Allocation& allocation,
                                 YarnConfig config,
                                 std::vector<QueueConfig> queues)
    : engine_(engine), config_(config), queues_(std::move(queues)) {
  if (allocation.empty()) {
    throw common::ConfigError("ResourceManager: empty allocation");
  }
  if (queues_.empty()) {
    throw common::ConfigError("ResourceManager: needs at least one queue");
  }
  double total_capacity = 0.0;
  for (const auto& q : queues_) {
    total_capacity += q.capacity;
    pending_.emplace(q.name, std::deque<PendingAsk>{});
  }
  if (total_capacity > 1.0 + 1e-9) {
    throw common::ConfigError(
        "ResourceManager: queue capacities exceed 100%");
  }
  if (config_.transport != nullptr) {
    transport_ = config_.transport;
  } else {
    owned_transport_ = std::make_unique<net::InProcessTransport>();
    transport_ = owned_transport_.get();
  }
  register_endpoints();
  for (const auto& node : allocation.nodes()) {
    node_managers_.push_back(
        std::make_unique<NodeManager>(engine_, config_, node));
    nm_index_[node_managers_.back()->node_name()] =
        node_managers_.back().get();
  }
  if (config_.control_plane == common::ControlPlane::kWatch) {
    // Demand-driven plane: passes are requested by the events that create
    // demand or capacity; NM liveness is a per-NM lease instead of a scan.
    for (const auto& nm : node_managers_) {
      arm_liveness_lease(nm->node_name());
    }
  } else {
    scheduler_event_ = engine_.schedule_periodic(
        config_.scheduler_interval, [this] { scheduler_pass(); });
  }
}

ResourceManager::~ResourceManager() {
  shutdown();
  transport_->unregister_endpoint(nm_endpoint_);
  transport_->unregister_endpoint(rm_endpoint_);
}

void ResourceManager::register_endpoints() {
  const std::string prefix = next_rm_prefix();
  nm_endpoint_ = prefix + ".nm";
  rm_endpoint_ = prefix + ".rm";
  transport_->register_endpoint(
      nm_endpoint_,
      [this](const net::Envelope& env) { return handle_nm_message(env); });
  transport_->register_endpoint(
      rm_endpoint_, [this](const net::Envelope& env) {
        const auto msg = net::open_envelope<net::ContainerRunning>(env);
        auto it = pending_running_.find(msg.correlation);
        if (it != pending_running_.end()) {
          auto cb = std::move(it->second);
          pending_running_.erase(it);
          if (cb) cb();
        }
        return net::make_envelope(net::Ack{});
      });
}

net::Envelope ResourceManager::handle_nm_message(const net::Envelope& env) {
  switch (env.type) {
    case net::MsgType::kAllocateRequest: {
      const auto msg = net::open_envelope<net::AllocateRequest>(env);
      NodeManager* nm = find_nm(msg.node);
      Container c;
      c.id = msg.container_id;
      c.app_id = msg.app_id;
      c.resource = Resource{msg.memory_mb, static_cast<int>(msg.vcores)};
      c.is_am = msg.is_am;
      const bool ok = nm != nullptr && nm->allocate(c);
      return net::make_envelope(
          net::AllocateReply{ok, ok ? nm->node_name() : std::string{}});
    }
    case net::MsgType::kLaunchRequest: {
      const auto msg = net::open_envelope<net::LaunchRequest>(env);
      const std::string cid = msg.container_id;
      const std::uint64_t correlation = msg.correlation;
      node_manager(msg.node).launch(cid, [this, cid, correlation] {
        // Completion crosses back as a correlated one-way message; the
        // NM already filtered killed-while-launching containers.
        if (shut_down_) return;
        net::send(*transport_, rm_endpoint_,
                  net::ContainerRunning{cid, correlation});
      });
      return net::make_envelope(net::Ack{});
    }
    case net::MsgType::kReleaseRequest: {
      const auto msg = net::open_envelope<net::ReleaseRequest>(env);
      node_manager(msg.node).release(
          msg.container_id, static_cast<ContainerState>(msg.final_state));
      return net::make_envelope(net::Ack{});
    }
    case net::MsgType::kNodeProbe: {
      const auto msg = net::open_envelope<net::NodeProbe>(env);
      NodeManager& nm = node_manager(msg.node);
      return net::make_envelope(
          net::NodeStatus{msg.node, nm.last_heartbeat(), nm.alive()});
    }
    default:
      throw common::StateError(std::string("RM: unexpected message on NM "
                                           "plane: ") +
                               net::to_string(env.type));
  }
}

bool ResourceManager::transport_allocate(NodeManager& nm,
                                         const Container& container) {
  return net::call<net::AllocateReply>(
             *transport_, nm_endpoint_,
             net::AllocateRequest{container.id, container.app_id,
                                  nm.node_name(), container.resource.memory_mb,
                                  container.resource.vcores, container.is_am})
      .ok;
}

void ResourceManager::transport_launch(const std::string& node,
                                       const std::string& container_id,
                                       std::function<void()> on_running) {
  const std::uint64_t correlation = next_correlation_++;
  pending_running_.emplace(correlation, std::move(on_running));
  net::call<net::Ack>(*transport_, nm_endpoint_,
                      net::LaunchRequest{node, container_id, correlation});
}

void ResourceManager::transport_release(NodeManager& nm,
                                        const std::string& container_id,
                                        ContainerState final_state) {
  net::call<net::Ack>(
      *transport_, nm_endpoint_,
      net::ReleaseRequest{nm.node_name(), container_id,
                          static_cast<std::uint8_t>(final_state)});
}

common::Seconds ResourceManager::transport_last_heartbeat(
    const std::string& node) {
  return net::call<net::NodeStatus>(*transport_, nm_endpoint_,
                                    net::NodeProbe{node})
      .last_heartbeat;
}

void ResourceManager::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  engine_.cancel(scheduler_event_);
  engine_.cancel(pass_event_);
  pass_pending_ = false;
  liveness_leases_.clear();
  // Kill everything still running.
  std::vector<std::string> live;
  for (const auto& [id, app] : apps_) {
    if (!is_final(app.report.state)) live.push_back(id);
  }
  for (const auto& id : live) finish_application(id, AppState::kKilled);
}

void ResourceManager::request_scheduler_pass() {
  if (shut_down_ || config_.control_plane != common::ControlPlane::kWatch) {
    return;
  }
  if (pass_pending_) return;  // dedup: one pass covers all queued demand
  pass_pending_ = true;
  pass_event_ = engine_.schedule(config_.scheduler_interval, [this] {
    pass_pending_ = false;
    pass_event_ = sim::EventHandle{};
    if (shut_down_) return;
    scheduler_pass();
    // Anything still unplaced waits for the next capacity event (a
    // release, node join/recovery) — those all call back in here.
  });
}

NodeManager* ResourceManager::find_nm(const std::string& node) {
  auto it = nm_index_.find(node);
  return it == nm_index_.end() ? nullptr : it->second;
}

void ResourceManager::arm_liveness_lease(const std::string& node) {
  if (config_.control_plane != common::ControlPlane::kWatch ||
      config_.nm_liveness_timeout <= 0.0) {
    return;
  }
  auto& lease = liveness_leases_[node];
  if (lease == nullptr) {
    lease = std::make_unique<sim::DeadlineTimer>(
        engine_, [this, node] { check_liveness_lease(node); });
  }
  lease->arm(config_.nm_liveness_timeout);
}

void ResourceManager::check_liveness_lease(const std::string& node) {
  if (shut_down_) return;
  NodeManager* nm = find_nm(node);
  if (nm == nullptr || !nm->alive()) return;  // re-armed on recovery
  // Watch-plane liveness check is a real probe: NodeProbe/NodeStatus
  // over the transport (poll mode keeps its direct ledger scan).
  const common::Seconds expire_at =
      transport_last_heartbeat(node) + config_.nm_liveness_timeout;
  if (engine_.now() < expire_at) {
    // Heartbeat arrived since the lease was armed; push the deadline out.
    liveness_leases_.at(node)->arm_at(expire_at);
    return;
  }
  fail_node(node);  // detection at exactly crash + timeout
}

std::string ResourceManager::submit_application(AppDescriptor descriptor) {
  if (shut_down_) {
    throw common::StateError("ResourceManager is shut down");
  }
  if (pending_.count(descriptor.queue) == 0) {
    throw common::ConfigError("unknown queue: " + descriptor.queue);
  }
  const std::string app_id = common::strformat(
      "application_%llu_%04llu",
      static_cast<unsigned long long>(cluster_timestamp_),
      static_cast<unsigned long long>(next_app_number_++));

  AppRecord record;
  record.descriptor = std::move(descriptor);
  record.report.id = app_id;
  record.report.name = record.descriptor.name;
  record.report.queue = record.descriptor.queue;
  record.report.state = AppState::kSubmitted;
  record.report.submit_time = engine_.now();
  record.am = std::make_unique<ApplicationMaster>(*this, app_id);

  PendingAsk ask;
  ask.app_id = app_id;
  ask.request.resource = config_.normalize(record.descriptor.am_resource);
  ask.is_am = true;
  ask.seq = next_ask_seq_++;
  pending_.at(record.descriptor.queue).push_back(std::move(ask));

  apps_.emplace(app_id, std::move(record));
  request_scheduler_pass();  // demand created
  return app_id;
}

ResourceManager::AppRecord& ResourceManager::find_app(
    const std::string& app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    throw common::NotFoundError("RM: unknown application " + app_id);
  }
  return it->second;
}

const ResourceManager::AppRecord& ResourceManager::find_app(
    const std::string& app_id) const {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    throw common::NotFoundError("RM: unknown application " + app_id);
  }
  return it->second;
}

AppReport ResourceManager::application(const std::string& app_id) const {
  return find_app(app_id).report;
}

std::vector<AppReport> ResourceManager::applications() const {
  std::vector<AppReport> out;
  out.reserve(apps_.size());
  for (const auto& [id, app] : apps_) out.push_back(app.report);
  return out;
}

ApplicationMaster& ResourceManager::application_master(
    const std::string& app_id) {
  return *find_app(app_id).am;
}

NodeManager& ResourceManager::node_manager(const std::string& node) {
  NodeManager* nm = find_nm(node);
  if (nm == nullptr) {
    throw common::NotFoundError("RM: unknown NodeManager " + node);
  }
  return *nm;
}

std::size_t ResourceManager::live_node_count() const {
  std::size_t n = 0;
  for (const auto& nm : node_managers_) {
    if (nm->alive()) ++n;
  }
  return n;
}

void ResourceManager::fail_node(const std::string& node) {
  NodeManager& nm = node_manager(node);
  if (!nm.alive()) return;
  // A silently crashed NM already lost its containers at the crash
  // instant; propagate those. A direct fail_node kills them now.
  const auto lost =
      nm.crashed() ? nm.lost_on_crash() : nm.live_container_ids();
  nm.fail();  // releases the containers as KILLED
  trace_event("nm_lost",
              {{"node", node},
               {"lost_containers", std::to_string(lost.size())}});

  for (const auto& cid : lost) {
    const Container& c = nm.container(cid);
    auto it = apps_.find(c.app_id);
    if (it == apps_.end() || is_final(it->second.report.state)) continue;
    AppRecord& app = it->second;
    if (cid == app.am_container_id) {
      // AM lost: new attempt or app failure.
      if (app.attempt >= config_.am_max_attempts) {
        trace_event("app_failed",
                    {{"app", c.app_id},
                     {"reason", "am_max_attempts"},
                     {"attempt", std::to_string(app.attempt)}});
        finish_application(c.app_id, AppState::kFailed);
        continue;
      }
      app.attempt += 1;
      trace_event("am_restart", {{"app", c.app_id},
                                 {"node", node},
                                 {"attempt", std::to_string(app.attempt)}});
      app.am_container_id.clear();
      // Lost task containers of this app die with the attempt.
      for (const auto& tid : app.container_ids) {
        if (NodeManager* host = nm_hosting(tid)) {
          transport_release(*host, tid, ContainerState::kKilled);
        }
      }
      app.container_ids.clear();
      app.report.state = AppState::kSubmitted;
      PendingAsk ask;
      ask.app_id = c.app_id;
      ask.request.resource = config_.normalize(app.descriptor.am_resource);
      ask.is_am = true;
      ask.seq = next_ask_seq_++;
      pending_.at(app.report.queue).push_back(std::move(ask));
    } else {
      // Task container lost: tell the AM.
      trace_event("task_container_lost",
                  {{"app", c.app_id}, {"container", cid}, {"node", node}});
      std::erase(app.container_ids, cid);
      if (app.am->preempted_callback_) app.am->preempted_callback_(c);
    }
  }
  request_scheduler_pass();  // AM re-asks queued, capacity changed
}

void ResourceManager::liveness_pass() {
  if (config_.nm_liveness_timeout <= 0.0) return;
  std::vector<std::string> expired;
  for (const auto& nm : node_managers_) {
    if (!nm->alive()) continue;
    if (engine_.now() - nm->last_heartbeat() >= config_.nm_liveness_timeout) {
      expired.push_back(nm->node_name());
    }
  }
  for (const auto& node : expired) fail_node(node);
}

std::optional<ContainerState> ResourceManager::container_state(
    const std::string& container_id) const {
  auto it = container_host_.find(container_id);
  if (it == container_host_.end()) return std::nullopt;
  return it->second->container(container_id).state;
}

void ResourceManager::trace_event(const std::string& name,
                                  std::map<std::string, std::string> attrs) {
  if (!trace_) return;
  trace_->record(engine_.now(), "yarn", name, std::move(attrs));
}

void ResourceManager::recover_node(const std::string& node) {
  NodeManager& nm = node_manager(node);
  nm.recover();
  arm_liveness_lease(node);
  request_scheduler_pass();  // capacity returned
}

void ResourceManager::add_node(std::shared_ptr<cluster::Node> node) {
  if (shut_down_) {
    throw common::StateError("ResourceManager is shut down");
  }
  if (nm_index_.count(node->name()) > 0) {
    throw common::StateError("RM: NodeManager already registered on " +
                             node->name());
  }
  const std::string name = node->name();
  node_managers_.push_back(
      std::make_unique<NodeManager>(engine_, config_, std::move(node)));
  nm_index_[name] = node_managers_.back().get();
  arm_liveness_lease(name);
  request_scheduler_pass();  // capacity grew
}

void ResourceManager::decommission_node(const std::string& node) {
  node_manager(node).start_decommission();
}

void ResourceManager::remove_node(const std::string& node) {
  auto it = std::find_if(
      node_managers_.begin(), node_managers_.end(),
      [&](const std::unique_ptr<NodeManager>& nm) {
        return nm->node_name() == node;
      });
  if (it == node_managers_.end()) {
    throw common::NotFoundError("RM: unknown NodeManager " + node);
  }
  if ((*it)->alive() && (*it)->live_count() > 0) {
    throw common::StateError("RM: NodeManager " + node +
                             " still hosts live containers");
  }
  liveness_leases_.erase(node);
  NodeManager* removed = it->get();
  std::erase_if(container_host_, [removed](const auto& entry) {
    return entry.second == removed;
  });
  nm_index_.erase(node);
  node_managers_.erase(it);
}

common::Json ResourceManager::apps_json() const {
  common::JsonArray rows;
  for (const auto& report : applications()) {
    common::Json row;
    row["id"] = report.id;
    row["name"] = report.name;
    row["queue"] = report.queue;
    row["state"] = to_string(report.state);
    row["amNode"] = report.am_node;
    row["submitTime"] = report.submit_time;
    row["startTime"] = report.start_time;
    row["finishTime"] = report.finish_time;
    rows.push_back(std::move(row));
  }
  common::Json out;
  out["apps"]["app"] = std::move(rows);
  return out;
}

NodeManager* ResourceManager::nm_hosting(const std::string& container_id) {
  auto it = container_host_.find(container_id);
  return it == container_host_.end() ? nullptr : it->second;
}

NodeManager* ResourceManager::try_place(const PendingAsk& ask,
                                        Container& out) {
  out.id = common::strformat(
      "container_%llu_%06llu",
      static_cast<unsigned long long>(cluster_timestamp_),
      static_cast<unsigned long long>(next_container_number_));
  out.app_id = ask.app_id;
  out.resource = ask.request.resource;
  out.is_am = ask.is_am;

  // Preferred nodes first (data locality), then any if relaxed.
  for (const auto& name : ask.request.preferred_nodes) {
    NodeManager* nm = find_nm(name);
    if (nm != nullptr && transport_allocate(*nm, out)) {
      out.node = nm->node_name();
      container_host_[out.id] = nm;
      ++next_container_number_;
      return nm;
    }
  }
  if (!ask.request.preferred_nodes.empty() && !ask.request.relax_locality) {
    return nullptr;
  }
  // Least-loaded placement by free memory: one allocation-free argmax
  // scan over the NMs that can host the ask. Picking the max-available
  // NM (first wins on ties) selects exactly the NM the old
  // stable_sort-then-first-fit walk found, without building and sorting
  // a candidate vector per ask.
  NodeManager* best = nullptr;
  common::MemoryMb best_available = -1;
  for (auto& nm : node_managers_) {
    if (!nm->can_fit(out.resource)) continue;
    const common::MemoryMb available = nm->available().memory_mb;
    if (available > best_available) {
      best = nm.get();
      best_available = available;
    }
  }
  if (best != nullptr && transport_allocate(*best, out)) {
    out.node = best->node_name();
    container_host_[out.id] = best;
    ++next_container_number_;
    return best;
  }
  return nullptr;
}

common::MemoryMb ResourceManager::queue_used_mb(
    const std::string& queue) const {
  // Walk live containers (AM and task alike) and credit their app's
  // queue — O(live containers) instead of the old apps x NMs x
  // containers triple scan, and the same sum: a live container's app is
  // never final, and a non-final app lists exactly its live containers.
  common::MemoryMb used = 0;
  for (const auto& nm : node_managers_) {
    for (const auto& cid : nm->live_container_ids()) {
      const Container& c = nm->container(cid);
      auto it = apps_.find(c.app_id);
      if (it == apps_.end() || is_final(it->second.report.state)) continue;
      if (it->second.report.queue == queue) used += c.resource.memory_mb;
    }
  }
  return used;
}

double ResourceManager::queue_usage_ratio(const std::string& queue) const {
  double capacity_fraction = 0.0;
  for (const auto& q : queues_) {
    if (q.name == queue) capacity_fraction = q.capacity;
  }
  const common::MemoryMb total = total_capacity().memory_mb;
  if (capacity_fraction <= 0.0 || total <= 0) return 1e18;
  const double share =
      static_cast<double>(total) * capacity_fraction;
  return static_cast<double>(queue_used_mb(queue)) / share;
}

void ResourceManager::scheduler_pass() {
  if (shut_down_) return;
  // Watch plane tracks NM liveness with per-NM leases; only the poll
  // plane folds the scan into scheduler passes.
  if (config_.control_plane != common::ControlPlane::kWatch) liveness_pass();
  if (config_.preemption_enabled) preemption_pass();

  // Capacity: queues in increasing usage ratio (most-starved first).
  // FIFO: queue declaration order; within a queue asks are FIFO anyway,
  // and with the default single queue this is strict submission order.
  std::vector<const QueueConfig*> order;
  for (const auto& q : queues_) order.push_back(&q);
  if (config_.scheduler_policy == SchedulerPolicy::kCapacity) {
    std::stable_sort(order.begin(), order.end(),
                     [this](const QueueConfig* a, const QueueConfig* b) {
                       return queue_usage_ratio(a->name) <
                              queue_usage_ratio(b->name);
                     });
  }

  for (const auto* q : order) {
    auto& asks = pending_.at(q->name);
    std::deque<PendingAsk> remaining;
    // Monotone-failure cutoff: capacity only shrinks during a pass, so
    // once an unconstrained ask of size (m, v) fails to place, any later
    // ask needing at least that much fails too and is requeued without
    // another placement scan. Node-constrained (preferred, strict
    // locality) asks fail for node-local reasons and never arm the cut.
    common::MemoryMb failed_mb = -1;
    int failed_vcores = -1;
    while (!asks.empty()) {
      PendingAsk ask = std::move(asks.front());
      asks.pop_front();
      auto app_it = apps_.find(ask.app_id);
      if (app_it == apps_.end() || is_final(app_it->second.report.state)) {
        continue;  // app died while queued
      }
      const Resource& need = ask.request.resource;
      if (failed_mb >= 0 && need.memory_mb >= failed_mb &&
          need.vcores >= failed_vcores &&
          ask.request.preferred_nodes.empty()) {
        remaining.push_back(std::move(ask));
        continue;
      }
      Container placed;
      NodeManager* nm = try_place(ask, placed);
      if (nm == nullptr) {
        if (ask.request.preferred_nodes.empty() &&
            (failed_mb < 0 || need.memory_mb <= failed_mb)) {
          failed_mb = need.memory_mb;
          failed_vcores = need.vcores;
        }
        remaining.push_back(std::move(ask));
        continue;
      }
      AppRecord& app = app_it->second;
      if (ask.is_am) {
        app.am_container_id = placed.id;
        app.report.state = AppState::kAmLaunching;
        app.report.am_node = nm->node_name();
        const std::string app_id = ask.app_id;
        transport_launch(nm->node_name(), placed.id,
                         [this, app_id] { on_am_container_running(app_id); });
      } else {
        app.container_ids.push_back(placed.id);
        if (ask.on_allocated) ask.on_allocated(placed);
      }
    }
    asks = std::move(remaining);
  }
}

void ResourceManager::preemption_pass() {
  // Find a starved queue (pending asks, usage below capacity).
  const QueueConfig* starved = nullptr;
  for (const auto& q : queues_) {
    if (!pending_.at(q.name).empty() && queue_usage_ratio(q.name) < 1.0) {
      starved = &q;
      break;
    }
  }
  if (starved == nullptr) return;
  // Find the most over-capacity queue.
  const QueueConfig* over = nullptr;
  double worst = 1.0 + 1e-9;
  for (const auto& q : queues_) {
    const double ratio = queue_usage_ratio(q.name);
    if (ratio > worst) {
      worst = ratio;
      over = &q;
    }
  }
  if (over == nullptr) return;
  // Preempt the newest non-AM container of the newest app in that queue.
  for (auto it = apps_.rbegin(); it != apps_.rend(); ++it) {
    AppRecord& app = it->second;
    if (app.report.queue != over->name || is_final(app.report.state)) {
      continue;
    }
    for (auto cit = app.container_ids.rbegin();
         cit != app.container_ids.rend(); ++cit) {
      NodeManager* nm = nm_hosting(*cit);
      if (nm == nullptr) continue;
      const Container& c = nm->container(*cit);
      if (c.state == ContainerState::kRunning ||
          c.state == ContainerState::kAllocated ||
          c.state == ContainerState::kLaunching) {
        Container copy = c;
        transport_release(*nm, *cit, ContainerState::kPreempted);
        if (preemption_hook_) {
          preemption_hook_(app.report.id, copy.id, app.report.queue);
        }
        if (app.am->preempted_callback_) app.am->preempted_callback_(copy);
        return;  // one preemption per pass
      }
    }
  }
}

void ResourceManager::on_am_container_running(const std::string& app_id) {
  // AM process is up; registration handshake follows.
  engine_.schedule(config_.am_register_time, [this, app_id] {
    auto it = apps_.find(app_id);
    if (it == apps_.end() || is_final(it->second.report.state)) return;
    AppRecord& app = it->second;
    app.report.state = AppState::kRunning;
    app.report.start_time = engine_.now();
    if (app.descriptor.on_am_start) app.descriptor.on_am_start(*app.am);
  });
}

void ResourceManager::finish_application(const std::string& app_id,
                                         AppState final_state) {
  AppRecord& app = find_app(app_id);
  if (is_final(app.report.state)) return;
  app.report.state = final_state;
  app.report.finish_time = engine_.now();
  // Release all live containers including the AM's.
  const ContainerState container_final = final_state == AppState::kFinished
                                             ? ContainerState::kCompleted
                                             : ContainerState::kKilled;
  for (const auto& cid : app.container_ids) {
    if (NodeManager* nm = nm_hosting(cid)) {
      transport_release(*nm, cid, container_final);
    }
  }
  if (!app.am_container_id.empty()) {
    if (NodeManager* nm = nm_hosting(app.am_container_id)) {
      transport_release(*nm, app.am_container_id, container_final);
    }
  }
  // Drop this app's pending asks.
  for (auto& [queue, asks] : pending_) {
    std::erase_if(asks,
                  [&app_id](const PendingAsk& a) { return a.app_id == app_id; });
  }
  request_scheduler_pass();  // released capacity may satisfy other asks
  // Push the outcome to the submitter (event notification, not polling).
  if (app.descriptor.on_finished) app.descriptor.on_finished(app.report);
}

void ResourceManager::kill_application(const std::string& app_id) {
  finish_application(app_id, AppState::kKilled);
}

void ResourceManager::am_request_containers(
    const std::string& app_id, int count, const ContainerRequest& request,
    std::function<void(const Container&)> cb) {
  AppRecord& app = find_app(app_id);
  if (app.report.state != AppState::kRunning) {
    throw common::StateError("AM of " + app_id +
                             " requested containers while not RUNNING");
  }
  for (int i = 0; i < count; ++i) {
    PendingAsk ask;
    ask.app_id = app_id;
    ask.request = request;
    ask.request.resource = config_.normalize(request.resource);
    ask.is_am = false;
    ask.on_allocated = cb;
    ask.seq = next_ask_seq_++;
    pending_.at(app.report.queue).push_back(std::move(ask));
  }
  request_scheduler_pass();  // demand created
}

void ResourceManager::am_launch_container(const std::string& app_id,
                                          const std::string& container_id,
                                          std::function<void()> on_running) {
  find_app(app_id);  // validates
  NodeManager* nm = nm_hosting(container_id);
  if (nm == nullptr) {
    throw common::NotFoundError("no NM hosts container " + container_id);
  }
  transport_launch(nm->node_name(), container_id, std::move(on_running));
}

void ResourceManager::am_release_container(const std::string& app_id,
                                           const std::string& container_id,
                                           ContainerState final_state) {
  find_app(app_id);
  if (NodeManager* nm = nm_hosting(container_id)) {
    transport_release(*nm, container_id, final_state);
  }
  request_scheduler_pass();  // capacity freed
}

void ResourceManager::am_unregister(const std::string& app_id, bool success) {
  finish_application(app_id,
                     success ? AppState::kFinished : AppState::kFailed);
}

Resource ResourceManager::total_capacity() const {
  Resource total{0, 0};
  for (const auto& nm : node_managers_) {
    if (!nm->alive() || nm->decommissioning()) continue;
    total.memory_mb += nm->capacity().memory_mb;
    total.vcores += nm->capacity().vcores;
  }
  return total;
}

Resource ResourceManager::total_allocated() const {
  Resource total{0, 0};
  for (const auto& nm : node_managers_) {
    total.memory_mb += nm->allocated().memory_mb;
    total.vcores += nm->allocated().vcores;
  }
  return total;
}

common::Json ResourceManager::cluster_metrics() const {
  const Resource cap = total_capacity();
  const Resource used = total_allocated();
  std::int64_t running = 0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  for (const auto& [id, app] : apps_) {
    ++submitted;
    if (app.report.state == AppState::kRunning) ++running;
    if (is_final(app.report.state)) ++completed;
  }
  common::Json metrics;
  auto& m = metrics["clusterMetrics"];
  m["appsSubmitted"] = submitted;
  m["appsRunning"] = running;
  m["appsCompleted"] = completed;
  m["totalMB"] = cap.memory_mb;
  m["totalVirtualCores"] = static_cast<std::int64_t>(cap.vcores);
  m["allocatedMB"] = used.memory_mb;
  m["allocatedVirtualCores"] = static_cast<std::int64_t>(used.vcores);
  m["availableMB"] = cap.memory_mb - used.memory_mb;
  m["availableVirtualCores"] =
      static_cast<std::int64_t>(cap.vcores - used.vcores);
  m["activeNodes"] = static_cast<std::int64_t>(live_node_count());
  m["lostNodes"] =
      static_cast<std::int64_t>(node_managers_.size() - live_node_count());
  return metrics;
}

common::Json ResourceManager::scheduler_info() const {
  common::JsonArray queue_rows;
  for (const auto& q : queues_) {
    common::Json row;
    row["queueName"] = q.name;
    row["capacity"] = q.capacity * 100.0;
    row["usedMB"] = queue_used_mb(q.name);
    row["pendingContainers"] =
        static_cast<std::int64_t>(pending_.at(q.name).size());
    queue_rows.push_back(std::move(row));
  }
  common::Json info;
  info["scheduler"]["type"] = "capacityScheduler";
  info["scheduler"]["queues"] = std::move(queue_rows);
  return info;
}

// --- ApplicationMaster methods (need the full RM type) ---

void ApplicationMaster::request_containers(
    int count, const ContainerRequest& request,
    std::function<void(const Container&)> on_allocated) {
  rm_.am_request_containers(app_id_, count, request, std::move(on_allocated));
}

void ApplicationMaster::launch(const std::string& container_id,
                               std::function<void()> on_running) {
  rm_.am_launch_container(app_id_, container_id, std::move(on_running));
}

void ApplicationMaster::complete_container(const std::string& container_id) {
  rm_.am_release_container(app_id_, container_id,
                           ContainerState::kCompleted);
}

void ApplicationMaster::kill_container(const std::string& container_id) {
  rm_.am_release_container(app_id_, container_id, ContainerState::kKilled);
}

void ApplicationMaster::unregister(bool success) {
  rm_.am_unregister(app_id_, success);
}

}  // namespace hoh::yarn
