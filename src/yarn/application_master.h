#pragma once

#include <functional>
#include <string>

#include "yarn/node_manager.h"
#include "yarn/types.h"

/// \file application_master.h
/// The Application Master protocol handle (paper SS-III-C, Fig. 4): "The
/// central component of a YARN application is the Application Master,
/// which is responsible for negotiating resources with the YARN Resource
/// Manager as well as for managing the execution of the application in
/// the assigned resources." The RM creates one AM per application and
/// runs the descriptor's on_am_start once the AM container is up; the AM
/// then requests task containers, launches payloads in them, and
/// unregisters when done.

namespace hoh::yarn {

class ResourceManager;

class ApplicationMaster {
 public:
  ApplicationMaster(ResourceManager& rm, std::string app_id)
      : rm_(rm), app_id_(std::move(app_id)) {}

  ApplicationMaster(const ApplicationMaster&) = delete;
  ApplicationMaster& operator=(const ApplicationMaster&) = delete;

  const std::string& app_id() const { return app_id_; }

  /// Asks the RM for \p count containers; \p on_allocated fires once per
  /// grant (possibly over several scheduler passes).
  void request_containers(int count, const ContainerRequest& request,
                          std::function<void(const Container&)> on_allocated);

  /// Starts an allocated container; \p on_running fires after the NM's
  /// launch latency.
  void launch(const std::string& container_id,
              std::function<void()> on_running);

  /// Reports a container's payload finished; resources return to the NM.
  void complete_container(const std::string& container_id);

  /// Kills a container (e.g. payload hung).
  void kill_container(const std::string& container_id);

  /// Unregisters the AM: finishes the application, releasing everything.
  void unregister(bool success = true);

  /// Callback invoked when the scheduler preempts one of this app's
  /// containers (paper SS-III-B: "allocated resources ... can be
  /// preempted by the scheduler").
  void on_preempted(std::function<void(const Container&)> callback) {
    preempted_callback_ = std::move(callback);
  }

 private:
  friend class ResourceManager;

  ResourceManager& rm_;
  std::string app_id_;
  std::function<void(const Container&)> preempted_callback_;
};

}  // namespace hoh::yarn
