#include "yarn/yarn_cluster.h"

namespace hoh::yarn {

YarnCluster::YarnCluster(sim::Engine& engine,
                         const cluster::MachineProfile& machine,
                         const cluster::Allocation& allocation,
                         YarnClusterConfig config)
    : machine_(machine), allocation_(allocation) {
  hdfs_ = std::make_unique<hdfs::HdfsCluster>(
      engine, machine, allocation.node_names(), config.hdfs);
  rm_ = std::make_unique<ResourceManager>(engine, allocation, config.yarn,
                                          config.queues);
}

void YarnCluster::shutdown() { rm_->shutdown(); }

}  // namespace hoh::yarn
