#include "yarn/yarn_cluster.h"

namespace hoh::yarn {

YarnCluster::YarnCluster(sim::Engine& engine,
                         const cluster::MachineProfile& machine,
                         const cluster::Allocation& allocation,
                         YarnClusterConfig config)
    : machine_(machine), allocation_(allocation) {
  hdfs_ = std::make_unique<hdfs::HdfsCluster>(
      engine, machine, allocation.node_names(), config.hdfs);
  rm_ = std::make_unique<ResourceManager>(engine, allocation, config.yarn,
                                          config.queues);
}

void YarnCluster::shutdown() { rm_->shutdown(); }

void YarnCluster::add_nodes(
    const std::vector<std::shared_ptr<cluster::Node>>& nodes) {
  for (const auto& node : nodes) {
    rm_->add_node(node);
    hdfs_->add_datanode(node->name());
    allocation_.add(node);
  }
}

void YarnCluster::decommission_nodes(const std::vector<std::string>& names) {
  for (const auto& name : names) {
    rm_->decommission_node(name);
    hdfs_->decommission_datanode(name);
  }
}

bool YarnCluster::decommission_complete(
    const std::vector<std::string>& names) {
  for (const auto& name : names) {
    NodeManager& nm = rm_->node_manager(name);
    if (nm.alive() && nm.live_count() > 0) return false;
    if (!hdfs_->decommission_complete(name)) return false;
  }
  return true;
}

void YarnCluster::remove_nodes(const std::vector<std::string>& names) {
  for (const auto& name : names) {
    rm_->remove_node(name);
    hdfs_->remove_datanode(name);
    allocation_.remove(name);
  }
}

}  // namespace hoh::yarn
