#include "mapreduce/sim_cost.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hoh::mapreduce {

double storage_phase_time(const cluster::MachineProfile& machine,
                          cluster::StorageBackend backend,
                          common::Bytes bytes_per_stream, int total_streams,
                          int nodes, int ops_per_stream) {
  total_streams = std::max(1, total_streams);
  nodes = std::max(1, nodes);
  switch (backend) {
    case cluster::StorageBackend::kSharedFs: {
      // Every client pays the metadata RTT per op; bandwidth is shared
      // machine-wide (including background load).
      const auto& fs = machine.shared_fs;
      const double meta = fs.metadata_latency * ops_per_stream;
      const double xfer =
          fs.transfer_time(bytes_per_stream, total_streams) -
          fs.metadata_latency;  // transfer_time includes one op already
      return meta + std::max(0.0, xfer);
    }
    case cluster::StorageBackend::kLocalDisk:
    case cluster::StorageBackend::kLocalSsd: {
      const auto& disk = backend == cluster::StorageBackend::kLocalSsd
                             ? machine.local_ssd
                             : machine.local_disk;
      const int streams_per_node =
          (total_streams + nodes - 1) / nodes;  // ceil
      const double meta = disk.op_latency * ops_per_stream;
      const double xfer =
          disk.transfer_time(bytes_per_stream, streams_per_node) -
          disk.op_latency;
      return meta + std::max(0.0, xfer);
    }
    case cluster::StorageBackend::kMemory:
      return machine.memory.transfer_time(bytes_per_stream);
  }
  throw common::ConfigError("storage_phase_time: unknown backend");
}

double memory_pressure_factor(const PhaseEnv& env) {
  const int nodes = std::max(1, env.nodes);
  const int tasks_per_node = (env.tasks + nodes - 1) / nodes;
  const double demand =
      static_cast<double>(tasks_per_node) *
          static_cast<double>(env.memory_per_task_mb) +
      static_cast<double>(env.framework_memory_mb);
  const double budget = env.memory_pressure_threshold *
                        static_cast<double>(env.machine->node.memory_mb);
  if (demand <= budget) return 1.0;
  // Past the threshold, slowdown grows with the over-subscription ratio
  // (page-cache thrash / GC pressure, super-linear).
  const double over = demand / budget;
  return 1.0 + 0.8 * (over - 1.0) + 0.6 * (over - 1.0) * (over - 1.0);
}

double compute_time(const PhaseEnv& env, double ops) {
  const int total_cores = env.nodes * env.machine->node.cores;
  const int effective_tasks = std::min(env.tasks, total_cores);
  const double rate = env.machine->node.compute_rate;
  return ops * env.op_cost /
         (static_cast<double>(std::max(1, effective_tasks)) * rate);
}

PhaseCost estimate_phase(const PhaseSpec& spec, const PhaseEnv& env) {
  if (env.machine == nullptr) {
    throw common::ConfigError("PhaseEnv.machine must be set");
  }
  if (env.tasks <= 0 || env.nodes <= 0) {
    throw common::ConfigError("PhaseEnv: tasks and nodes must be >= 1");
  }
  PhaseCost cost;
  const int tasks = env.tasks;
  const int nodes = env.nodes;

  // --- runtime-environment load ---
  if (env.env_bytes > 0 || env.env_file_ops > 0) {
    if (env.env_cached_per_node) {
      // One localization per node from the local tier, concurrently.
      const auto backend = env.machine->node.local_ssd_bw > 0.0
                               ? cluster::StorageBackend::kLocalSsd
                               : cluster::StorageBackend::kLocalDisk;
      cost.env_load = storage_phase_time(*env.machine, backend,
                                         env.env_bytes, nodes, nodes,
                                         env.env_file_ops);
    } else {
      // Every task loads the environment through the phase backend.
      cost.env_load =
          storage_phase_time(*env.machine, env.io_backend, env.env_bytes,
                             tasks, nodes, env.env_file_ops);
    }
  }

  // --- input ---
  if (spec.input_bytes > 0) {
    cost.input_read = storage_phase_time(
        *env.machine, env.io_backend, spec.input_bytes / tasks, tasks, nodes,
        /*ops_per_stream=*/1);
  }

  // --- compute with memory pressure ---
  cost.memory_pressure_factor = memory_pressure_factor(env);
  cost.compute = compute_time(env, spec.compute_ops) *
                 cost.memory_pressure_factor;

  // --- shuffle: write + read of the intermediate volume, plus the
  // small-file metadata storm (one file per mapper x reducer pair) ---
  double shuffle = 0.0;
  if (spec.shuffle_write_bytes > 0 || spec.shuffle_files > 0) {
    const int ops_per_task =
        tasks > 0 ? (spec.shuffle_files + tasks - 1) / tasks : 0;
    shuffle += storage_phase_time(*env.machine, env.io_backend,
                                  spec.shuffle_write_bytes / tasks, tasks,
                                  nodes, std::max(1, ops_per_task));
  }
  if (spec.shuffle_read_bytes > 0) {
    const int ops_per_task =
        tasks > 0 ? (spec.shuffle_files + tasks - 1) / tasks : 0;
    shuffle += storage_phase_time(*env.machine, env.io_backend,
                                  spec.shuffle_read_bytes / tasks, tasks,
                                  nodes, std::max(1, ops_per_task));
    // Local-disk shuffle still crosses the network for remote partitions.
    if (env.io_backend == cluster::StorageBackend::kLocalDisk ||
        env.io_backend == cluster::StorageBackend::kLocalSsd) {
      const double remote_fraction =
          nodes > 1 ? 1.0 - 1.0 / static_cast<double>(nodes) : 0.0;
      const common::Bytes remote_bytes = static_cast<common::Bytes>(
          static_cast<double>(spec.shuffle_read_bytes / tasks) *
          remote_fraction);
      if (remote_bytes > 0) {
        shuffle += env.machine->network.transfer_time(remote_bytes, tasks);
      }
    }
  }
  cost.shuffle = shuffle;

  // --- output ---
  if (spec.output_bytes > 0) {
    cost.output_write = storage_phase_time(
        *env.machine, env.io_backend, spec.output_bytes / tasks, tasks,
        nodes, 1);
  }
  return cost;
}

}  // namespace hoh::mapreduce
