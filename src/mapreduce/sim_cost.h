#pragma once

#include <string>

#include "cluster/machine.h"
#include "common/units.h"

/// \file sim_cost.h
/// Analytic cost model for one MapReduce-style phase executed as a set of
/// parallel tasks on a machine. The Fig. 6 benchmark drives the simulated
/// middleware with task durations produced here.
///
/// The model captures the effects the paper's evaluation discusses:
///  * compute ∝ work / (tasks × core speed),
///  * per-task runtime-environment loading (interpreter + libraries) —
///    pathological on a shared parallel filesystem, cheap and cached
///    per-node under YARN's resource localization,
///  * input/shuffle/output I/O through either the shared filesystem or
///    node-local disks, with the concurrency semantics of each
///    (machine-wide sharing vs. per-node streams),
///  * shuffle small-file metadata cost (map_tasks × reduce_tasks files),
///  * a memory-pressure slowdown once per-node footprint nears capacity.

namespace hoh::mapreduce {

/// Work and data volumes of one phase (whole-phase totals).
struct PhaseSpec {
  double compute_ops = 0.0;       ///< abstract op units for the whole phase
  common::Bytes input_bytes = 0;  ///< bytes read by all tasks together
  common::Bytes shuffle_write_bytes = 0;  ///< intermediate data written
  common::Bytes shuffle_read_bytes = 0;   ///< intermediate data read
  common::Bytes output_bytes = 0;         ///< final output written
  int shuffle_files = 0;  ///< small files created/opened (M x R)
};

/// Execution environment of the phase.
struct PhaseEnv {
  const cluster::MachineProfile* machine = nullptr;
  int nodes = 1;
  int tasks = 1;
  cluster::StorageBackend io_backend = cluster::StorageBackend::kSharedFs;

  /// Seconds of compute per op unit on a compute_rate-1.0 core.
  double op_cost = 2.0e-5;

  /// Runtime-environment loading (Python interpreter + modules in the
  /// paper's stack).
  int env_file_ops = 300;
  common::Bytes env_bytes = 150 * common::kMiB;
  /// True when the environment is localized once per node and reused
  /// (YARN distributed-cache semantics); false = every task loads it.
  bool env_cached_per_node = false;

  /// Per-task memory footprint and threshold for the pressure penalty.
  common::MemoryMb memory_per_task_mb = 2048;
  common::MemoryMb framework_memory_mb = 3072;  // daemons, OS, page cache
  double memory_pressure_threshold = 0.85;
};

/// Per-phase cost breakdown, all in seconds of wall time for the phase.
struct PhaseCost {
  double env_load = 0.0;
  double input_read = 0.0;
  double compute = 0.0;
  double shuffle = 0.0;
  double output_write = 0.0;
  double memory_pressure_factor = 1.0;

  double total() const {
    return env_load + input_read + compute + shuffle + output_write;
  }
};

/// Effective per-stream transfer time for \p bytes on \p backend when
/// \p total_streams of our tasks do I/O at once, spread over \p nodes.
/// Exposed for tests and for the ablation benches.
double storage_phase_time(const cluster::MachineProfile& machine,
                          cluster::StorageBackend backend,
                          common::Bytes bytes_per_stream, int total_streams,
                          int nodes, int ops_per_stream = 1);

/// Memory pressure slowdown factor (>= 1).
double memory_pressure_factor(const PhaseEnv& env);

/// Estimates the wall time of one phase.
PhaseCost estimate_phase(const PhaseSpec& spec, const PhaseEnv& env);

/// Convenience: whole tasks' compute share with core capping.
double compute_time(const PhaseEnv& env, double ops);

}  // namespace hoh::mapreduce
