#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "yarn/application_master.h"
#include "yarn/resource_manager.h"

/// \file yarn_mr_driver.h
/// A Hadoop-MapReduce-style YARN application: one Application Master that
/// requests map containers (honoring split locality), barriers, then
/// requests reduce containers — the execution structure of a real MRv2
/// job, driven entirely through the simulated YARN protocol. Task
/// durations come from a cost model (e.g. mapreduce::estimate_phase).

namespace hoh::mapreduce {

/// Description of one simulated MR job run on YARN.
struct YarnMrJobSpec {
  std::string name = "mr-job";
  std::string queue = "default";
  int map_tasks = 4;
  int reduce_tasks = 1;
  yarn::Resource map_resource{2048, 1};
  yarn::Resource reduce_resource{2048, 1};
  common::Seconds map_task_seconds = 10.0;
  common::Seconds reduce_task_seconds = 5.0;

  /// Preferred node per map task (input split location); empty or
  /// shorter than map_tasks = no preference for the remainder.
  std::vector<std::string> split_locations;
};

/// Progress snapshot.
struct YarnMrJobStatus {
  int maps_done = 0;
  int reduces_done = 0;
  bool finished = false;
  /// Fraction of map containers granted on their preferred node.
  double map_locality = 0.0;
};

/// Submits and tracks MR-style YARN applications.
class YarnMrDriver {
 public:
  explicit YarnMrDriver(yarn::ResourceManager& rm) : rm_(rm) {}

  YarnMrDriver(const YarnMrDriver&) = delete;
  YarnMrDriver& operator=(const YarnMrDriver&) = delete;

  /// Submits the job; \p on_done fires when the reduce phase finished
  /// and the application unregistered. Returns the application id.
  std::string submit(const YarnMrJobSpec& spec,
                     std::function<void()> on_done = nullptr);

  YarnMrJobStatus status(const std::string& app_id) const;

 private:
  struct JobRec {
    YarnMrJobSpec spec;
    YarnMrJobStatus progress;
    int maps_local = 0;
    std::function<void()> on_done;
  };

  void start_reduce_phase(const std::string& app_id,
                          yarn::ApplicationMaster& am);

  yarn::ResourceManager& rm_;
  std::map<std::string, JobRec> jobs_;
};

}  // namespace hoh::mapreduce
