#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"
#include "sim/trace.h"
#include "yarn/application_master.h"
#include "yarn/resource_manager.h"

/// \file yarn_mr_driver.h
/// A Hadoop-MapReduce-style YARN application: one Application Master that
/// requests map containers (honoring split locality), barriers, then
/// requests reduce containers — the execution structure of a real MRv2
/// job, driven entirely through the simulated YARN protocol. Task
/// durations come from a cost model (e.g. mapreduce::estimate_phase).
///
/// Fault tolerance follows MRv2 semantics: a task whose container is
/// lost (node failure, preemption) is re-requested up to
/// max_task_attempts; losing the AM container starts a fresh AM attempt
/// (up to yarn.am_max_attempts) which re-runs the job's task graph from
/// scratch; the job is marked failed only once a task or the AM exhausts
/// its budget.

namespace hoh::mapreduce {

/// Description of one simulated MR job run on YARN.
struct YarnMrJobSpec {
  std::string name = "mr-job";
  std::string queue = "default";
  int map_tasks = 4;
  int reduce_tasks = 1;
  yarn::Resource map_resource{2048, 1};
  yarn::Resource reduce_resource{2048, 1};
  common::Seconds map_task_seconds = 10.0;
  common::Seconds reduce_task_seconds = 5.0;

  /// mapreduce.map|reduce.maxattempts: executions of one task before the
  /// job fails (Hadoop default 4).
  int max_task_attempts = 4;

  /// Preferred node per map task (input split location); empty or
  /// shorter than map_tasks = no preference for the remainder.
  std::vector<std::string> split_locations;
};

/// Progress snapshot.
struct YarnMrJobStatus {
  int maps_done = 0;
  int reduces_done = 0;
  bool finished = false;
  /// True when the job gave up (task attempts or AM attempts exhausted).
  bool failed = false;
  /// Tasks re-executed after container loss (all attempts beyond the
  /// first, summed over the job).
  int task_retries = 0;
  /// AM attempts beyond the first this driver observed.
  int am_restarts = 0;
  /// Fraction of map containers granted on their preferred node.
  double map_locality = 0.0;
};

/// Submits and tracks MR-style YARN applications.
class YarnMrDriver {
 public:
  explicit YarnMrDriver(yarn::ResourceManager& rm) : rm_(rm) {}

  YarnMrDriver(const YarnMrDriver&) = delete;
  YarnMrDriver& operator=(const YarnMrDriver&) = delete;

  /// Optional trace sink: task re-execution and job-failure decisions
  /// are recorded under category "mapreduce".
  void set_trace(sim::Trace* trace) { trace_ = trace; }

  /// Submits the job; \p on_done fires when the reduce phase finished
  /// and the application unregistered (success only). Failure is pushed
  /// into the driver's record via the RM's completion notification the
  /// moment the application reaches a final state — status() reflects it
  /// without polling. Returns the application id.
  std::string submit(const YarnMrJobSpec& spec,
                     std::function<void()> on_done = nullptr);

  YarnMrJobStatus status(const std::string& app_id) const;

 private:
  struct JobRec {
    YarnMrJobSpec spec;
    YarnMrJobStatus progress;
    int maps_local = 0;
    /// AM attempt epoch: bumped on every on_am_start. Callbacks from an
    /// older attempt (timers of tasks that died with it) are ignored.
    int epoch = 0;
    /// Executions started per task key ("m3", "r0"), current attempt.
    std::map<std::string, int> task_attempts;
    /// Live container id -> task key (current attempt only).
    std::map<std::string, std::string> container_task;
    std::function<void()> on_done;
  };

  void run_attempt(const std::string& app_id, yarn::ApplicationMaster& am);
  void request_map_task(const std::string& app_id,
                        yarn::ApplicationMaster& am, int task, int epoch);
  void request_reduce_task(const std::string& app_id,
                           yarn::ApplicationMaster& am, int task, int epoch);
  void handle_lost_container(const std::string& app_id,
                             yarn::ApplicationMaster& am,
                             const yarn::Container& c, int epoch);
  void start_reduce_phase(const std::string& app_id,
                          yarn::ApplicationMaster& am, int epoch);
  void fail_job(const std::string& app_id, yarn::ApplicationMaster& am,
                const std::string& reason);
  void trace_event(const std::string& name,
                   std::map<std::string, std::string> attrs);

  yarn::ResourceManager& rm_;
  sim::Trace* trace_ = nullptr;
  std::map<std::string, JobRec> jobs_;
};

}  // namespace hoh::mapreduce
