#include "mapreduce/yarn_mr_driver.h"

#include "common/error.h"

namespace hoh::mapreduce {

namespace {
std::string map_key(int task) { return "m" + std::to_string(task); }
std::string reduce_key(int task) { return "r" + std::to_string(task); }
}  // namespace

std::string YarnMrDriver::submit(const YarnMrJobSpec& spec,
                                 std::function<void()> on_done) {
  if (spec.map_tasks < 1 || spec.reduce_tasks < 0) {
    throw common::ConfigError("YarnMrJobSpec: need >= 1 map task");
  }
  if (spec.max_task_attempts < 1) {
    throw common::ConfigError("YarnMrJobSpec: max_task_attempts must be >= 1");
  }
  auto shared_id = std::make_shared<std::string>();
  yarn::AppDescriptor app;
  app.name = spec.name;
  app.queue = spec.queue;
  app.on_am_start = [this, shared_id](yarn::ApplicationMaster& am) {
    run_attempt(*shared_id, am);
  };
  app.on_finished = [this, shared_id](const yarn::AppReport& report) {
    // The RM pushes the final outcome (e.g. AM attempts exhausted) — the
    // driver's record is updated eagerly instead of lazily in status().
    auto it = jobs_.find(*shared_id);
    if (it == jobs_.end()) return;
    JobRec& job = it->second;
    if (job.progress.finished || job.progress.failed) return;
    if (report.state == yarn::AppState::kFailed ||
        report.state == yarn::AppState::kKilled) {
      job.progress.failed = true;
    }
  };
  const std::string app_id = rm_.submit_application(std::move(app));
  *shared_id = app_id;
  JobRec rec;
  rec.spec = spec;
  rec.on_done = std::move(on_done);
  jobs_.emplace(app_id, std::move(rec));
  return app_id;
}

void YarnMrDriver::run_attempt(const std::string& app_id,
                               yarn::ApplicationMaster& am) {
  JobRec& job = jobs_.at(app_id);
  job.epoch += 1;
  const int epoch = job.epoch;
  if (epoch > 1) {
    // Fresh AM attempt after node loss: the task graph restarts from
    // scratch (the sim does not model MRv2 completed-map recovery).
    job.progress.maps_done = 0;
    job.progress.reduces_done = 0;
    job.progress.am_restarts += 1;
    job.maps_local = 0;
    job.task_attempts.clear();
    job.container_task.clear();
    trace_event("am_attempt_started",
                {{"app", app_id}, {"epoch", std::to_string(epoch)}});
  }
  am.on_preempted([this, app_id, &am, epoch](const yarn::Container& c) {
    handle_lost_container(app_id, am, c, epoch);
  });
  for (int t = 0; t < job.spec.map_tasks; ++t) {
    request_map_task(app_id, am, t, epoch);
  }
}

void YarnMrDriver::request_map_task(const std::string& app_id,
                                    yarn::ApplicationMaster& am, int task,
                                    int epoch) {
  JobRec& job = jobs_.at(app_id);
  job.task_attempts[map_key(task)] += 1;
  yarn::ContainerRequest req;
  req.resource = job.spec.map_resource;
  std::string preferred;
  if (task < static_cast<int>(job.spec.split_locations.size())) {
    preferred = job.spec.split_locations[static_cast<std::size_t>(task)];
    if (!preferred.empty()) req.preferred_nodes = {preferred};
  }
  am.request_containers(
      1, req,
      [this, app_id, &am, task, epoch, preferred](const yarn::Container& c) {
        JobRec& j = jobs_.at(app_id);
        if (j.epoch != epoch || j.progress.failed) return;
        j.container_task[c.id] = map_key(task);
        if (!preferred.empty() && c.node == preferred) j.maps_local += 1;
        am.launch(c.id, [this, app_id, &am, task, epoch, id = c.id] {
          JobRec& j2 = jobs_.at(app_id);
          if (j2.epoch != epoch || j2.progress.failed) return;
          rm_.engine().schedule(
              j2.spec.map_task_seconds,
              [this, app_id, &am, task, epoch, id] {
                JobRec& j3 = jobs_.at(app_id);
                if (j3.epoch != epoch || j3.progress.failed) return;
                // A container killed by a silent crash has no callback;
                // its timer still fires. Only a still-running container
                // counts as a completed task.
                if (rm_.container_state(id) !=
                    yarn::ContainerState::kRunning) {
                  return;
                }
                am.complete_container(id);
                j3.container_task.erase(id);
                j3.progress.maps_done += 1;
                if (j3.progress.maps_done == j3.spec.map_tasks) {
                  j3.progress.map_locality =
                      j3.spec.split_locations.empty()
                          ? 0.0
                          : static_cast<double>(j3.maps_local) /
                                static_cast<double>(j3.spec.map_tasks);
                  start_reduce_phase(app_id, am, epoch);
                }
              });
        });
      });
}

void YarnMrDriver::request_reduce_task(const std::string& app_id,
                                       yarn::ApplicationMaster& am, int task,
                                       int epoch) {
  JobRec& job = jobs_.at(app_id);
  job.task_attempts[reduce_key(task)] += 1;
  yarn::ContainerRequest req;
  req.resource = job.spec.reduce_resource;
  am.request_containers(
      1, req, [this, app_id, &am, task, epoch](const yarn::Container& c) {
        JobRec& j = jobs_.at(app_id);
        if (j.epoch != epoch || j.progress.failed) return;
        j.container_task[c.id] = reduce_key(task);
        am.launch(c.id, [this, app_id, &am, epoch, id = c.id] {
          JobRec& j2 = jobs_.at(app_id);
          if (j2.epoch != epoch || j2.progress.failed) return;
          rm_.engine().schedule(
              j2.spec.reduce_task_seconds, [this, app_id, &am, epoch, id] {
                JobRec& j3 = jobs_.at(app_id);
                if (j3.epoch != epoch || j3.progress.failed) return;
                if (rm_.container_state(id) !=
                    yarn::ContainerState::kRunning) {
                  return;
                }
                am.complete_container(id);
                j3.container_task.erase(id);
                j3.progress.reduces_done += 1;
                if (j3.progress.reduces_done == j3.spec.reduce_tasks) {
                  j3.progress.finished = true;
                  am.unregister(true);
                  if (j3.on_done) j3.on_done();
                }
              });
        });
      });
}

void YarnMrDriver::handle_lost_container(const std::string& app_id,
                                         yarn::ApplicationMaster& am,
                                         const yarn::Container& c,
                                         int epoch) {
  JobRec& job = jobs_.at(app_id);
  if (job.epoch != epoch || job.progress.failed || job.progress.finished) {
    return;
  }
  auto it = job.container_task.find(c.id);
  if (it == job.container_task.end()) return;  // not one of ours anymore
  const std::string key = it->second;
  job.container_task.erase(it);

  const int attempts = job.task_attempts[key];
  if (attempts >= job.spec.max_task_attempts) {
    trace_event("task_attempts_exhausted",
                {{"app", app_id},
                 {"task", key},
                 {"attempts", std::to_string(attempts)}});
    fail_job(app_id, am, "task " + key + " exhausted attempts");
    return;
  }
  job.progress.task_retries += 1;
  trace_event("task_retry", {{"app", app_id},
                             {"task", key},
                             {"attempt", std::to_string(attempts + 1)},
                             {"lost_container", c.id}});
  const int task = std::stoi(key.substr(1));
  if (key[0] == 'm') {
    request_map_task(app_id, am, task, epoch);
  } else {
    request_reduce_task(app_id, am, task, epoch);
  }
}

void YarnMrDriver::start_reduce_phase(const std::string& app_id,
                                      yarn::ApplicationMaster& am,
                                      int epoch) {
  JobRec& job = jobs_.at(app_id);
  if (job.spec.reduce_tasks == 0) {
    job.progress.finished = true;
    am.unregister(true);
    if (job.on_done) job.on_done();
    return;
  }
  for (int r = 0; r < job.spec.reduce_tasks; ++r) {
    request_reduce_task(app_id, am, r, epoch);
  }
}

void YarnMrDriver::fail_job(const std::string& app_id,
                            yarn::ApplicationMaster& am,
                            const std::string& reason) {
  JobRec& job = jobs_.at(app_id);
  if (job.progress.failed || job.progress.finished) return;
  job.progress.failed = true;
  trace_event("job_failed", {{"app", app_id}, {"reason", reason}});
  am.unregister(false);
}

void YarnMrDriver::trace_event(const std::string& name,
                               std::map<std::string, std::string> attrs) {
  if (!trace_) return;
  trace_->record(rm_.engine().now(), "mapreduce", name, std::move(attrs));
}

YarnMrJobStatus YarnMrDriver::status(const std::string& app_id) const {
  auto it = jobs_.find(app_id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("YarnMrDriver: unknown job " + app_id);
  }
  YarnMrJobStatus out = it->second.progress;
  // The RM can fail the application behind the driver's back (AM
  // attempts exhausted); fold that into the snapshot.
  const yarn::AppState app_state = rm_.application(app_id).state;
  if (!out.finished && (app_state == yarn::AppState::kFailed ||
                        app_state == yarn::AppState::kKilled)) {
    out.failed = true;
  }
  return out;
}

}  // namespace hoh::mapreduce
