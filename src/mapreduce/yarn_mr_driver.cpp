#include "mapreduce/yarn_mr_driver.h"

#include "common/error.h"

namespace hoh::mapreduce {

std::string YarnMrDriver::submit(const YarnMrJobSpec& spec,
                                 std::function<void()> on_done) {
  if (spec.map_tasks < 1 || spec.reduce_tasks < 0) {
    throw common::ConfigError("YarnMrJobSpec: need >= 1 map task");
  }
  auto shared_id = std::make_shared<std::string>();
  yarn::AppDescriptor app;
  app.name = spec.name;
  app.queue = spec.queue;
  app.on_am_start = [this, shared_id](yarn::ApplicationMaster& am) {
    JobRec& job = jobs_.at(*shared_id);
    const auto& spec = job.spec;
    for (int t = 0; t < spec.map_tasks; ++t) {
      yarn::ContainerRequest req;
      req.resource = spec.map_resource;
      std::string preferred;
      if (t < static_cast<int>(spec.split_locations.size())) {
        preferred = spec.split_locations[static_cast<std::size_t>(t)];
        if (!preferred.empty()) req.preferred_nodes = {preferred};
      }
      am.request_containers(
          1, req,
          [this, shared_id, &am, preferred](const yarn::Container& c) {
            JobRec& j = jobs_.at(*shared_id);
            if (!preferred.empty() && c.node == preferred) {
              j.maps_local += 1;
            }
            am.launch(c.id, [this, shared_id, &am, id = c.id] {
              JobRec& j2 = jobs_.at(*shared_id);
              rm_.engine().schedule(
                  j2.spec.map_task_seconds,
                  [this, shared_id, &am, id] {
                    am.complete_container(id);
                    JobRec& j3 = jobs_.at(*shared_id);
                    j3.progress.maps_done += 1;
                    if (j3.progress.maps_done == j3.spec.map_tasks) {
                      j3.progress.map_locality =
                          j3.spec.split_locations.empty()
                              ? 0.0
                              : static_cast<double>(j3.maps_local) /
                                    static_cast<double>(j3.spec.map_tasks);
                      start_reduce_phase(*shared_id, am);
                    }
                  });
            });
          });
    }
  };
  const std::string app_id = rm_.submit_application(std::move(app));
  *shared_id = app_id;
  JobRec rec;
  rec.spec = spec;
  rec.on_done = std::move(on_done);
  jobs_.emplace(app_id, std::move(rec));
  return app_id;
}

void YarnMrDriver::start_reduce_phase(const std::string& app_id,
                                      yarn::ApplicationMaster& am) {
  JobRec& job = jobs_.at(app_id);
  if (job.spec.reduce_tasks == 0) {
    job.progress.finished = true;
    am.unregister(true);
    if (job.on_done) job.on_done();
    return;
  }
  for (int r = 0; r < job.spec.reduce_tasks; ++r) {
    yarn::ContainerRequest req;
    req.resource = job.spec.reduce_resource;
    am.request_containers(1, req, [this, app_id,
                                   &am](const yarn::Container& c) {
      am.launch(c.id, [this, app_id, &am, id = c.id] {
        JobRec& j = jobs_.at(app_id);
        rm_.engine().schedule(j.spec.reduce_task_seconds,
                              [this, app_id, &am, id] {
                                am.complete_container(id);
                                JobRec& j2 = jobs_.at(app_id);
                                j2.progress.reduces_done += 1;
                                if (j2.progress.reduces_done ==
                                    j2.spec.reduce_tasks) {
                                  j2.progress.finished = true;
                                  am.unregister(true);
                                  if (j2.on_done) j2.on_done();
                                }
                              });
      });
    });
  }
}

YarnMrJobStatus YarnMrDriver::status(const std::string& app_id) const {
  auto it = jobs_.find(app_id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("YarnMrDriver: unknown job " + app_id);
  }
  return it->second.progress;
}

}  // namespace hoh::mapreduce
