#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "common/error.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/units.h"

/// \file mr_engine.h
/// A real, in-process MapReduce engine: typed map / combine / partition /
/// shuffle / reduce over a thread pool. Used by the K-Means workload and
/// the examples to run genuine computation; the cluster-scale analogue is
/// the analytic cost model in sim_cost.h.

namespace hoh::mapreduce {

/// Counters a job run reports (the subset of Hadoop's that the paper's
/// analysis cares about: record counts and shuffle volume).
struct MrStats {
  std::size_t map_input_records = 0;
  std::size_t map_output_records = 0;
  std::size_t combine_output_records = 0;
  std::size_t reduce_input_groups = 0;
  std::size_t reduce_output_records = 0;
  common::Bytes shuffle_bytes = 0;
};

/// Collects (key, value) pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<K, V>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Typed MapReduce job description.
///   Mapper  : (input record, emitter) -> emits (K, V)
///   Combiner: optional (K, values) -> V           (map-side pre-reduce)
///   Reducer : (K, values) -> output record
template <typename InputT, typename K, typename V, typename OutputT>
struct MrJob {
  std::function<void(const InputT&, Emitter<K, V>&)> mapper;
  std::function<V(const K&, const std::vector<V>&)> combiner;  // optional
  std::function<OutputT(const K&, const std::vector<V>&)> reducer;
  std::size_t map_tasks = 0;     // 0 = pool size
  std::size_t reduce_tasks = 0;  // 0 = map task count
  /// Bytes per shuffled (K, V) pair for the shuffle_bytes counter.
  std::size_t pair_bytes = sizeof(K) + sizeof(V);
};

/// Runs \p job over \p input on \p pool. Output order follows reducer
/// partition, then key order within each partition (deterministic).
template <typename InputT, typename K, typename V, typename OutputT>
std::vector<OutputT> run_mr(common::ThreadPool& pool,
                            const std::vector<InputT>& input,
                            const MrJob<InputT, K, V, OutputT>& job,
                            MrStats* stats = nullptr) {
  if (!job.mapper || !job.reducer) {
    throw common::ConfigError("MrJob: mapper and reducer are required");
  }
  const std::size_t m =
      job.map_tasks > 0 ? job.map_tasks : std::max<std::size_t>(1, pool.size());
  const std::size_t r = job.reduce_tasks > 0 ? job.reduce_tasks : m;

  MrStats local_stats;
  local_stats.map_input_records = input.size();

  // --- map phase: split input into m contiguous splits ---
  // buckets[map_task][reduce_task] -> key -> values
  std::vector<std::vector<std::map<K, std::vector<V>>>> buckets(m);
  const std::size_t chunk = (input.size() + m - 1) / std::max<std::size_t>(m, 1);
  common::Mutex stats_mu;
  pool.parallel_for(m, [&](std::size_t t) {
    buckets[t].resize(r);
    const std::size_t lo = t * chunk;
    const std::size_t hi = std::min(input.size(), lo + chunk);
    Emitter<K, V> emitter;
    for (std::size_t i = lo; i < hi; ++i) job.mapper(input[i], emitter);
    std::hash<K> hasher;
    std::size_t emitted = emitter.pairs().size();
    for (auto& [k, v] : emitter.pairs()) {
      buckets[t][hasher(k) % r][k].push_back(std::move(v));
    }
    // Optional combiner: collapse each key's values map-side.
    std::size_t combined = 0;
    if (job.combiner) {
      for (auto& bucket : buckets[t]) {
        for (auto& [k, vs] : bucket) {
          V c = job.combiner(k, vs);
          vs.clear();
          vs.push_back(std::move(c));
          ++combined;
        }
      }
    }
    common::MutexLock lock(stats_mu);
    local_stats.map_output_records += emitted;
    local_stats.combine_output_records += combined;
  });

  // --- shuffle accounting ---
  for (const auto& per_map : buckets) {
    for (const auto& bucket : per_map) {
      for (const auto& [k, vs] : bucket) {
        local_stats.shuffle_bytes +=
            static_cast<common::Bytes>(vs.size() * job.pair_bytes);
      }
    }
  }

  // --- reduce phase ---
  std::vector<std::vector<OutputT>> outputs(r);
  pool.parallel_for(r, [&](std::size_t rt) {
    std::map<K, std::vector<V>> merged;
    for (std::size_t mt = 0; mt < m; ++mt) {
      for (auto& [k, vs] : buckets[mt][rt]) {
        auto& dst = merged[k];
        dst.insert(dst.end(), std::make_move_iterator(vs.begin()),
                   std::make_move_iterator(vs.end()));
      }
    }
    std::size_t groups = 0;
    for (auto& [k, vs] : merged) {
      outputs[rt].push_back(job.reducer(k, vs));
      ++groups;
    }
    common::MutexLock lock(stats_mu);
    local_stats.reduce_input_groups += groups;
    local_stats.reduce_output_records += groups;
  });

  std::vector<OutputT> out;
  for (auto& part : outputs) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace hoh::mapreduce
