#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "common/units.h"

/// \file mr_engine.h
/// A real, in-process MapReduce engine: typed map / combine / partition /
/// shuffle / reduce over a thread pool. Used by the K-Means workload and
/// the examples to run genuine computation; the cluster-scale analogue is
/// the analytic cost model in sim_cost.h.
///
/// The shuffle is flat and allocation-light (see DESIGN.md, "Engine data
/// path"): each map task scatters (K, V) pairs straight into one flat,
/// hash-partitioned run per reduce task; the optional combiner collapses
/// sorted runs in place; each reduce task groups its runs' values under
/// dense first-encounter ids and sorts only the distinct keys. No per-key
/// tree nodes are ever built on either side.

namespace hoh::mapreduce {

/// Counters a job run reports (the subset of Hadoop's that the paper's
/// analysis cares about: record counts and shuffle volume).
struct MrStats {
  std::size_t map_input_records = 0;
  std::size_t map_output_records = 0;
  std::size_t combine_output_records = 0;
  std::size_t reduce_input_groups = 0;
  std::size_t reduce_output_records = 0;
  common::Bytes shuffle_bytes = 0;
};

/// Collects (key, value) pairs emitted by one map task, scattering each
/// pair straight into the shuffle run of the reduce task its key hashes
/// to — there is no staging buffer to re-copy during the shuffle.
template <typename K, typename V>
class Emitter {
 public:
  /// One shuffle run: keys and values as parallel arrays in emission
  /// order. Split storage lets a fully-combined run hand its value vector
  /// to the combiner without gathering a copy first.
  struct Run {
    std::vector<K> keys;
    std::vector<V> values;

    std::size_t size() const { return keys.size(); }
    bool empty() const { return keys.empty(); }
  };

  /// Standalone emitter (one run, no partitioning) — handy in tests.
  Emitter() : runs_(&own_runs_) {
    own_runs_.resize(1);
    base_ = own_runs_.data();
    count_ = 1;
  }

  /// Engine emitter: scatters into \p runs (one per reduce task), which
  /// must outlive the emitter and not be resized while attached (the run
  /// array's address and length are latched here so the emit hot path
  /// never re-reads them through the pointer).
  explicit Emitter(std::vector<Run>* runs)
      : runs_(runs),
        base_(runs->data()),
        count_(runs->size()),
        mask_(runs->size() > 1 && (runs->size() & (runs->size() - 1)) == 0
                  ? runs->size() - 1
                  : 0) {}

  Emitter(const Emitter&) = delete;
  Emitter& operator=(const Emitter&) = delete;

  /// Pre-sizes every run for \p n further emits spread evenly (the engine
  /// seeds this with the split size; mappers that emit more per record
  /// may top up).
  void reserve(std::size_t n) {
    const std::size_t per_run = n / runs_->size() + 1;
    for (auto& run : *runs_) {
      run.keys.reserve(run.keys.size() + per_run);
      run.values.reserve(run.values.size() + per_run);
    }
  }

  void emit(K key, V value) {
    // Power-of-two run counts (the common task-count choice) partition
    // with a mask; h & (r-1) == h % r, so the placement is identical.
    const std::size_t part =
        mask_ != 0 ? hasher_(key) & mask_
                   : (count_ > 1 ? hasher_(key) % count_ : 0);
    Run& run = base_[part];
    run.keys.push_back(std::move(key));
    run.values.push_back(std::move(value));
    ++emitted_;
  }

  /// emit() variant that constructs the value in place in the shuffle run
  /// — spares hot mappers a temporary-plus-move per record.
  template <typename... Args>
  void emplace(K key, Args&&... args) {
    const std::size_t part =
        mask_ != 0 ? hasher_(key) & mask_
                   : (count_ > 1 ? hasher_(key) % count_ : 0);
    Run& run = base_[part];
    run.keys.push_back(std::move(key));
    run.values.emplace_back(std::forward<Args>(args)...);
    ++emitted_;
  }

  /// Pairs emitted so far (across all runs).
  std::size_t emitted() const { return emitted_; }

  /// The sole run of a standalone emitter, in emission order.
  Run& pairs() { return (*runs_)[0]; }

 private:
  std::vector<Run> own_runs_;  // standalone mode only (declared first:
                               // runs_ points at it)
  std::vector<Run>* runs_;
  Run* base_ = nullptr;    // == runs_->data(), latched
  std::size_t count_ = 0;  // == runs_->size(), latched
  std::size_t mask_ = 0;   // r-1 when the run count is a power of two
  std::size_t emitted_ = 0;
  std::hash<K> hasher_;
};

/// Typed MapReduce job description.
///   Mapper  : (input record, emitter) -> emits (K, V)
///   Combiner: optional (K, values) -> V           (map-side pre-reduce)
///   Reducer : (K, values) -> output record
template <typename InputT, typename K, typename V, typename OutputT>
struct MrJob {
  std::function<void(const InputT&, Emitter<K, V>&)> mapper;
  std::function<V(const K&, const std::vector<V>&)> combiner;  // optional
  std::function<OutputT(const K&, const std::vector<V>&)> reducer;
  std::size_t map_tasks = 0;     // 0 = pool size
  std::size_t reduce_tasks = 0;  // 0 = map task count
  /// Bytes per shuffled (K, V) pair for the shuffle_bytes counter.
  std::size_t pair_bytes = sizeof(K) + sizeof(V);
};

namespace detail {

/// Key equality derived from the ordering the engine already requires,
/// so K needs nothing beyond operator< and std::hash.
template <typename K>
struct KeyEq {
  bool operator()(const K& a, const K& b) const {
    return !(a < b) && !(b < a);
  }
};

/// Collapses every equal-key group of \p run to the single combiner
/// output value, leaving the run compact in sorted-key order. Returns the
/// group count. Each group's values reach the combiner in emission order,
/// matching what a per-key bucket would have accumulated. \p scratch is
/// caller-owned so one buffer serves every run of a map task.
template <typename Run, typename C, typename V>
std::size_t combine_run_in_place(Run& run, const C& combiner,
                                 std::vector<V>& scratch) {
  if (run.empty()) return 0;
  auto& keys = run.keys;
  auto& values = run.values;
  // Runs whose keys all hash-collide into the same reduce partition are
  // often already key-sorted (one distinct key per run is the K-Means
  // shape); an O(n) scan over the contiguous keys dodges the sort.
  if (std::is_sorted(keys.begin(), keys.end())) {
    if (!(keys.front() < keys.back())) {
      // Single group: the run's own value vector IS the combiner input —
      // the dominant case for low-cardinality keys, and it copies nothing.
      V combined = combiner(keys.front(), values);
      keys.resize(1);
      values.clear();
      values.push_back(std::move(combined));
      return 1;
    }
    std::size_t write = 0;
    std::size_t i = 0;
    while (i < keys.size()) {
      std::size_t j = i + 1;
      // Sorted, so keys[i] <= keys[j]: equal iff not strictly less.
      while (j < keys.size() && !(keys[i] < keys[j])) ++j;
      scratch.clear();
      scratch.reserve(j - i);
      for (std::size_t v = i; v < j; ++v) {
        scratch.push_back(std::move(values[v]));
      }
      V combined = combiner(keys[i], scratch);
      if (write != i) keys[write] = std::move(keys[i]);
      values[write] = std::move(combined);
      ++write;
      i = j;
    }
    keys.resize(write);
    values.resize(write);
    return write;
  }
  // Unsorted: sort a permutation (8-byte indices, not key/value pairs) and
  // gather each group through it. stable_sort keeps equal keys' values in
  // emission order.
  std::vector<std::size_t> order(keys.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(
      order.begin(), order.end(),
      [&keys](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  std::decay_t<decltype(run.keys)> out_keys;
  std::vector<V> out_values;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i + 1;
    while (j < order.size() && !(keys[order[i]] < keys[order[j]])) ++j;
    scratch.clear();
    scratch.reserve(j - i);
    for (std::size_t v = i; v < j; ++v) {
      scratch.push_back(std::move(values[order[v]]));
    }
    V combined = combiner(keys[order[i]], scratch);
    out_keys.push_back(std::move(keys[order[i]]));
    out_values.push_back(std::move(combined));
    i = j;
  }
  keys = std::move(out_keys);
  values = std::move(out_values);
  return keys.size();
}

}  // namespace detail

/// Runs \p job over \p input on \p pool. Output order follows reducer
/// partition, then key order within each partition, with each key's values
/// ordered by map task then emission order (deterministic).
template <typename InputT, typename K, typename V, typename OutputT>
std::vector<OutputT> run_mr(common::ThreadPool& pool,
                            const std::vector<InputT>& input,
                            const MrJob<InputT, K, V, OutputT>& job,
                            MrStats* stats = nullptr) {
  if (!job.mapper || !job.reducer) {
    throw common::ConfigError("MrJob: mapper and reducer are required");
  }
  const std::size_t m =
      job.map_tasks > 0 ? job.map_tasks : std::max<std::size_t>(1, pool.size());
  const std::size_t r = job.reduce_tasks > 0 ? job.reduce_tasks : m;

  MrStats local_stats;
  local_stats.map_input_records = input.size();

  // --- map phase: split input into m contiguous splits ---
  // runs[map_task][reduce_task] -> flat (K, V) run, hash-partitioned.
  using Run = typename Emitter<K, V>::Run;
  std::vector<std::vector<Run>> runs(m);
  // Per-task counters: task t writes only slot t, and the parallel_for
  // barrier sequences every slot write before the single-threaded fold
  // below — no lock or atomic needed (DESIGN.md, "Concurrency invariants").
  struct MapCounters {
    std::size_t emitted = 0;
    std::size_t combined = 0;
  };
  std::vector<MapCounters> map_counters(m);
  const std::size_t chunk = (input.size() + m - 1) / std::max<std::size_t>(m, 1);
  pool.parallel_for(m, [&](std::size_t t) {
    auto& my_runs = runs[t];
    my_runs.resize(r);
    const std::size_t lo = std::min(input.size(), t * chunk);
    const std::size_t hi = std::min(input.size(), lo + chunk);
    Emitter<K, V> emitter(&my_runs);
    emitter.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) job.mapper(input[i], emitter);
    // Optional combiner: collapse each key's values map-side.
    std::size_t combined = 0;
    if (job.combiner) {
      std::vector<V> scratch;
      for (auto& run : my_runs) {
        combined += detail::combine_run_in_place(run, job.combiner, scratch);
      }
    }
    map_counters[t] = MapCounters{emitter.emitted(), combined};
  });
  for (const auto& c : map_counters) {
    local_stats.map_output_records += c.emitted;
    local_stats.combine_output_records += c.combined;
  }

  // --- shuffle accounting, straight off the flat runs ---
  std::size_t shuffled_pairs = 0;
  for (const auto& per_map : runs) {
    for (const auto& run : per_map) {
      shuffled_pairs += run.size();
    }
  }
  local_stats.shuffle_bytes =
      static_cast<common::Bytes>(shuffled_pairs * job.pair_bytes);

  // --- reduce phase: dense-id hash grouping + distinct-key sort ---
  std::vector<std::vector<OutputT>> outputs(r);
  // Same disjoint-slot discipline as map_counters above.
  std::vector<std::size_t> group_counts(r);
  const auto reduce_task = [&](std::size_t rt) {
    // Values group under dense first-encounter ids, so each value costs
    // one hash probe and one push — not a tree insert — while walking the
    // runs in map-task order keeps every group's values in map-task then
    // emission order. Only the distinct keys get sorted.
    //
    // Determinism audit (hoh_analyze det-unordered-emit): this table is
    // probed, never iterated — the loops below walk `runs` in map-task
    // order and the id-indexed vectors, and the distinct keys are sorted
    // before any output is emitted, so hash-bucket order cannot reach
    // the job output or the run digest.
    std::unordered_map<K, std::size_t, std::hash<K>, detail::KeyEq<K>> ids;
    std::vector<const K*> keys;             // id -> key (nodes are stable)
    std::vector<std::vector<V>> groups;     // id -> values
    for (std::size_t mt = 0; mt < m; ++mt) {
      auto& run = runs[mt][rt];
      const std::size_t n = run.size();
      for (std::size_t i = 0; i < n; ++i) {
        auto [it, fresh] =
            ids.try_emplace(std::move(run.keys[i]), keys.size());
        if (fresh) {
          keys.push_back(&it->first);
          groups.emplace_back();
        }
        groups[it->second].push_back(std::move(run.values[i]));
      }
      run = Run();  // free shuffled-out memory
    }
    std::vector<std::size_t> order(keys.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&keys](std::size_t a, std::size_t b) {
      return *keys[a] < *keys[b];
    });
    auto& out = outputs[rt];
    out.reserve(order.size());
    for (const std::size_t id : order) {
      out.push_back(job.reducer(*keys[id], groups[id]));
    }
    group_counts[rt] = order.size();
  };
  // A well-combined shuffle can be smaller than the cost of waking the
  // pool; reduce it on the calling thread instead (same algorithm, same
  // output — the parallel path only changes who runs each task).
  constexpr std::size_t kInlineReducePairs = 8192;
  if (shuffled_pairs <= kInlineReducePairs) {
    for (std::size_t rt = 0; rt < r; ++rt) reduce_task(rt);
  } else {
    pool.parallel_for(r, reduce_task);
  }
  for (std::size_t rt = 0; rt < r; ++rt) {
    local_stats.reduce_input_groups += group_counts[rt];
    local_stats.reduce_output_records += group_counts[rt];
  }

  std::size_t total_out = 0;
  for (const auto& part : outputs) total_out += part.size();
  std::vector<OutputT> out;
  out.reserve(total_out);
  for (auto& part : outputs) {
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace hoh::mapreduce
