#include "hdfs/input_splits.h"

namespace hoh::hdfs {

std::vector<InputSplit> compute_input_splits(const HdfsCluster& fs,
                                             const std::string& path,
                                             int target_splits) {
  const FileMeta& meta = fs.stat(path);
  std::vector<InputSplit> per_block;
  common::Bytes offset = 0;
  for (const auto& block : meta.blocks) {
    InputSplit split;
    split.path = path;
    split.offset = offset;
    split.length = block.size;
    for (const auto& replica : block.replicas) {
      split.hosts.push_back(replica.node);
    }
    per_block.push_back(std::move(split));
    offset += block.size;
  }
  if (target_splits <= 0 ||
      per_block.size() <= static_cast<std::size_t>(target_splits)) {
    return per_block;
  }
  // Merge adjacent blocks into at most target_splits splits; a merged
  // split keeps the host list of its first block (where the map task
  // starts reading).
  std::vector<InputSplit> merged;
  const std::size_t per_split =
      (per_block.size() + static_cast<std::size_t>(target_splits) - 1) /
      static_cast<std::size_t>(target_splits);
  for (std::size_t i = 0; i < per_block.size(); i += per_split) {
    InputSplit split = per_block[i];
    for (std::size_t j = i + 1;
         j < std::min(per_block.size(), i + per_split); ++j) {
      split.length += per_block[j].length;
    }
    merged.push_back(std::move(split));
  }
  return merged;
}

std::vector<std::string> preferred_hosts(
    const std::vector<InputSplit>& splits) {
  std::vector<std::string> out;
  out.reserve(splits.size());
  for (const auto& split : splits) {
    out.push_back(split.hosts.empty() ? "" : split.hosts.front());
  }
  return out;
}

}  // namespace hoh::hdfs
