#include "hdfs/hdfs_cluster.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::hdfs {

std::string to_string(StoragePolicy policy) {
  switch (policy) {
    case StoragePolicy::kDefault:
      return "DEFAULT";
    case StoragePolicy::kAllSsd:
      return "ALL_SSD";
    case StoragePolicy::kOneSsd:
      return "ONE_SSD";
    case StoragePolicy::kCold:
      return "COLD";
    case StoragePolicy::kLazyPersist:
      return "LAZY_PERSIST";
  }
  return "?";
}

HdfsCluster::HdfsCluster(sim::Engine& engine,
                         const cluster::MachineProfile& machine,
                         std::vector<std::string> nodes, HdfsConfig config,
                         std::uint64_t seed)
    : engine_(engine),
      machine_(machine),
      config_(config),
      rng_(seed),
      datanode_names_(std::move(nodes)) {
  if (datanode_names_.empty()) {
    throw common::ConfigError("HdfsCluster: needs at least one node");
  }
  namenode_ = datanode_names_.front();
  const bool ssd = machine_.node.local_ssd_bw > 0.0;
  const int racks = std::max(1, config_.racks);
  for (std::size_t i = 0; i < datanode_names_.size(); ++i) {
    datanodes_.emplace(datanode_names_[i],
                       DataNode{datanode_names_[i],
                                config_.datanode_capacity, 0, true, 0, ssd,
                                static_cast<int>(i) % racks});
  }
}

HdfsCluster::DataNode& HdfsCluster::datanode(const std::string& node) {
  auto it = datanodes_.find(node);
  if (it == datanodes_.end()) {
    throw common::NotFoundError("HDFS: unknown DataNode " + node);
  }
  return it->second;
}

const HdfsCluster::DataNode& HdfsCluster::datanode(
    const std::string& node) const {
  auto it = datanodes_.find(node);
  if (it == datanodes_.end()) {
    throw common::NotFoundError("HDFS: unknown DataNode " + node);
  }
  return it->second;
}

int HdfsCluster::rack_of(const std::string& node) const {
  return datanode(node).rack;
}

std::vector<std::string> HdfsCluster::place_replicas(
    int count, const std::string& first) {
  std::vector<std::string> live;
  for (const auto& [name, dn] : datanodes_) {
    if (eligible(dn)) live.push_back(name);
  }
  if (static_cast<int>(live.size()) < count) {
    throw common::ResourceError(common::strformat(
        "HDFS: cannot place %d replicas on %zu live DataNodes", count,
        live.size()));
  }
  std::vector<std::string> chosen;
  auto use = [&](const std::string& n) {
    chosen.push_back(n);
    live.erase(std::find(live.begin(), live.end(), n));
  };
  if (!first.empty() &&
      std::find(live.begin(), live.end(), first) != live.end()) {
    use(first);
  }
  // Remaining candidates: random spread, least-used bias.
  rng_.shuffle(live);
  std::stable_sort(live.begin(), live.end(),
                   [this](const std::string& a, const std::string& b) {
                     return datanodes_.at(a).used < datanodes_.at(b).used;
                   });
  // Classic rack policy when the cluster spans racks and we already have
  // a first replica: prefer a *different* rack for replica 2, then the
  // *same rack as replica 2* for replica 3.
  if (config_.racks > 1 && !chosen.empty()) {
    const int first_rack = datanode(chosen.front()).rack;
    if (static_cast<int>(chosen.size()) < count) {
      auto other = std::find_if(live.begin(), live.end(),
                                [&](const std::string& n) {
                                  return datanode(n).rack != first_rack;
                                });
      if (other != live.end()) use(*other);
    }
    if (static_cast<int>(chosen.size()) >= 2 &&
        static_cast<int>(chosen.size()) < count) {
      const int second_rack = datanode(chosen[1]).rack;
      auto same = std::find_if(live.begin(), live.end(),
                               [&](const std::string& n) {
                                 return datanode(n).rack == second_rack;
                               });
      if (same != live.end()) use(*same);
    }
  }
  for (const auto& n : live) {
    if (static_cast<int>(chosen.size()) >= count) break;
    chosen.push_back(n);
  }
  return chosen;
}

common::Seconds HdfsCluster::create_file(const std::string& path,
                                         common::Bytes size,
                                         const std::string& writer_node,
                                         std::optional<int> replication,
                                         StoragePolicy policy) {
  if (files_.count(path) > 0) {
    throw common::StateError("HDFS: file exists: " + path);
  }
  if (size < 0) throw common::ConfigError("HDFS: negative file size");
  const int repl = std::min(replication.value_or(config_.default_replication),
                            eligible_count());
  if (repl < 1) throw common::ResourceError("HDFS: no live DataNodes");

  FileMeta meta;
  meta.path = path;
  meta.size = size;
  meta.replication = repl;
  meta.policy = policy;

  common::Bytes remaining = size;
  do {
    const common::Bytes block_size = std::min<common::Bytes>(
        remaining, config_.block_size);
    Block block;
    block.id = next_block_id_++;
    block.size = block_size;
    const auto placement = place_replicas(repl, writer_node);
    for (std::size_t i = 0; i < placement.size(); ++i) {
      DataNode& dn = datanode(placement[i]);
      const bool ssd =
          dn.has_ssd && (policy == StoragePolicy::kAllSsd ||
                         (policy == StoragePolicy::kOneSsd && i == 0));
      dn.used += block_size;
      dn.block_count += 1;
      block.replicas.push_back(Replica{placement[i], ssd});
    }
    meta.blocks.push_back(std::move(block));
    remaining -= block_size;
  } while (remaining > 0);

  files_.emplace(path, std::move(meta));

  // Write-pipeline duration: the writer streams each block to the first
  // replica's disk while it forwards to the next (pipelined, so cost is
  // max of disk write and network hop per block, summed over blocks).
  common::Seconds duration = 0.0;
  const auto backend = policy == StoragePolicy::kAllSsd ||
                               policy == StoragePolicy::kOneSsd
                           ? (machine_.node.local_ssd_bw > 0.0
                                  ? cluster::StorageBackend::kLocalSsd
                                  : cluster::StorageBackend::kLocalDisk)
                       : policy == StoragePolicy::kCold
                           ? cluster::StorageBackend::kSharedFs
                       : policy == StoragePolicy::kLazyPersist
                           ? cluster::StorageBackend::kMemory
                           : cluster::StorageBackend::kLocalDisk;
  for (const auto& block : files_.at(path).blocks) {
    const common::Seconds disk =
        machine_.storage_transfer_time(backend, block.size, 1);
    const common::Seconds net =
        repl > 1 ? machine_.network.transfer_time(block.size, 1) : 0.0;
    duration += std::max(disk, net);
  }
  return duration;
}

bool HdfsCluster::exists(const std::string& path) const {
  return files_.count(path) > 0;
}

const FileMeta& HdfsCluster::stat(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw common::NotFoundError("HDFS: no such file: " + path);
  }
  return it->second;
}

void HdfsCluster::remove(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw common::NotFoundError("HDFS: no such file: " + path);
  }
  for (const auto& block : it->second.blocks) {
    for (const auto& replica : block.replicas) {
      auto dn = datanodes_.find(replica.node);
      if (dn != datanodes_.end()) {
        dn->second.used -= block.size;
        dn->second.block_count -= 1;
      }
    }
  }
  files_.erase(it);
}

std::vector<std::string> HdfsCluster::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, meta] : files_) {
    if (common::starts_with(path, prefix)) out.push_back(path);
  }
  return out;
}

common::Seconds HdfsCluster::read_time(const std::string& path,
                                       const std::string& reader_node,
                                       int concurrent_streams) const {
  const FileMeta& meta = stat(path);
  common::Seconds total = 0.0;
  for (const auto& block : meta.blocks) {
    bool local = false;
    bool local_ssd = false;
    for (const auto& replica : block.replicas) {
      if (replica.node == reader_node &&
          datanodes_.at(replica.node).alive) {
        local = true;
        local_ssd = replica.on_ssd;
        break;
      }
    }
    const auto backend = local_ssd ? cluster::StorageBackend::kLocalSsd
                                   : cluster::StorageBackend::kLocalDisk;
    const common::Seconds disk =
        machine_.storage_transfer_time(backend, block.size,
                                       concurrent_streams);
    if (local) {
      total += disk;
    } else {
      total += disk + machine_.network.transfer_time(block.size,
                                                     concurrent_streams);
    }
  }
  return total;
}

double HdfsCluster::locality(const std::string& path,
                             const std::string& node) const {
  const FileMeta& meta = stat(path);
  if (meta.blocks.empty()) return 0.0;
  std::size_t local = 0;
  for (const auto& block : meta.blocks) {
    for (const auto& replica : block.replicas) {
      if (replica.node == node && datanodes_.at(replica.node).alive) {
        ++local;
        break;
      }
    }
  }
  return static_cast<double>(local) /
         static_cast<double>(meta.blocks.size());
}

std::string HdfsCluster::best_node(const std::string& path) const {
  const FileMeta& meta = stat(path);
  std::map<std::string, std::size_t> counts;
  for (const auto& block : meta.blocks) {
    for (const auto& replica : block.replicas) {
      if (datanodes_.at(replica.node).alive) counts[replica.node] += 1;
    }
  }
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [node, count] : counts) {
    if (count > best_count) {
      best = node;
      best_count = count;
    }
  }
  return best;
}

void HdfsCluster::fail_datanode(const std::string& node) {
  DataNode& dn = datanode(node);
  if (!dn.alive) return;
  dn.alive = false;
  dn.used = 0;
  dn.block_count = 0;
  engine_.schedule(config_.replication_monitor_interval,
                   [this] { re_replicate(); });
}

int HdfsCluster::eligible_count() const {
  return static_cast<int>(
      std::count_if(datanodes_.begin(), datanodes_.end(),
                    [](const auto& kv) { return eligible(kv.second); }));
}

void HdfsCluster::add_datanode(const std::string& node) {
  if (datanodes_.count(node) > 0) {
    throw common::StateError("HDFS: DataNode already registered: " + node);
  }
  const bool ssd = machine_.node.local_ssd_bw > 0.0;
  const int racks = std::max(1, config_.racks);
  const int rack = static_cast<int>(datanode_names_.size()) % racks;
  datanode_names_.push_back(node);
  datanodes_.emplace(node, DataNode{node, config_.datanode_capacity, 0, true,
                                    0, ssd, rack, false});
}

void HdfsCluster::decommission_datanode(const std::string& node) {
  DataNode& dn = datanode(node);
  if (!dn.alive || dn.decommissioning) return;
  dn.decommissioning = true;
  if (!decommission_monitor_running_) {
    decommission_monitor_running_ = true;
    engine_.schedule(config_.replication_monitor_interval,
                     [this] { decommission_monitor(); });
  }
}

bool HdfsCluster::decommission_complete(const std::string& node) const {
  const DataNode& dn = datanode(node);
  if (!dn.alive) return true;
  for (const auto& [path, meta] : files_) {
    for (const auto& block : meta.blocks) {
      const bool hosted = std::any_of(
          block.replicas.begin(), block.replicas.end(),
          [&](const Replica& r) { return r.node == node; });
      if (!hosted) continue;
      const int safe = static_cast<int>(std::count_if(
          block.replicas.begin(), block.replicas.end(), [&](const Replica& r) {
            return eligible(datanodes_.at(r.node));
          }));
      if (safe < std::min(meta.replication, eligible_count())) return false;
    }
  }
  return true;
}

void HdfsCluster::remove_datanode(const std::string& node) {
  datanode(node);  // throws when unknown
  if (node == namenode_) {
    throw common::StateError("HDFS: cannot remove the NameNode host");
  }
  for (auto& [path, meta] : files_) {
    for (auto& block : meta.blocks) {
      std::erase_if(block.replicas,
                    [&](const Replica& r) { return r.node == node; });
    }
  }
  datanodes_.erase(node);
  std::erase(datanode_names_, node);
}

bool HdfsCluster::all_blocks_replicated() const {
  const int cap = eligible_count();
  for (const auto& [path, meta] : files_) {
    for (const auto& block : meta.blocks) {
      const int safe = static_cast<int>(std::count_if(
          block.replicas.begin(), block.replicas.end(), [&](const Replica& r) {
            return eligible(datanodes_.at(r.node));
          }));
      if (safe < std::min(meta.replication, cap)) return false;
    }
  }
  return true;
}

void HdfsCluster::decommission_monitor() {
  // Copy replicas off decommissioning nodes onto eligible targets, up to
  // the per-round budget, keeping the originals in place until the drain
  // completes (the node is removed only by remove_datanode).
  int budget = std::max(1, config_.decommission_blocks_per_round);
  bool pending = false;
  for (auto& [path, meta] : files_) {
    for (auto& block : meta.blocks) {
      const bool leaving = std::any_of(
          block.replicas.begin(), block.replicas.end(), [&](const Replica& r) {
            const DataNode& dn = datanodes_.at(r.node);
            return dn.alive && dn.decommissioning;
          });
      if (!leaving) continue;
      const int safe = static_cast<int>(std::count_if(
          block.replicas.begin(), block.replicas.end(), [&](const Replica& r) {
            return eligible(datanodes_.at(r.node));
          }));
      int need = std::min(meta.replication, eligible_count()) - safe;
      while (need > 0 && budget > 0) {
        std::vector<std::string> candidates;
        for (const auto& [name, dn] : datanodes_) {
          const bool holds = std::any_of(
              block.replicas.begin(), block.replicas.end(),
              [&](const Replica& r) { return r.node == name; });
          if (eligible(dn) && !holds) candidates.push_back(name);
        }
        if (candidates.empty()) break;
        rng_.shuffle(candidates);
        std::stable_sort(candidates.begin(), candidates.end(),
                         [this](const std::string& a, const std::string& b) {
                           return datanodes_.at(a).used < datanodes_.at(b).used;
                         });
        DataNode& target = datanode(candidates.front());
        target.used += block.size;
        target.block_count += 1;
        block.replicas.push_back(Replica{target.name, false});
        --need;
        --budget;
      }
      if (need > 0) pending = true;
      if (budget == 0) pending = true;
    }
  }
  // Keep running while any decommissioning node still hosts blocks that
  // are not yet safe elsewhere.
  if (!pending) {
    for (const auto& [name, dn] : datanodes_) {
      if (dn.alive && dn.decommissioning && !decommission_complete(name)) {
        pending = true;
        break;
      }
    }
  }
  if (pending) {
    engine_.schedule(config_.replication_monitor_interval,
                     [this] { decommission_monitor(); });
  } else {
    decommission_monitor_running_ = false;
  }
}

void HdfsCluster::re_replicate() {
  for (auto& [path, meta] : files_) {
    for (auto& block : meta.blocks) {
      // Drop dead replicas.
      std::vector<std::string> holders;
      std::erase_if(block.replicas, [this](const Replica& r) {
        return !datanodes_.at(r.node).alive;
      });
      for (const auto& r : block.replicas) holders.push_back(r.node);

      while (static_cast<int>(block.replicas.size()) < meta.replication) {
        // Pick a live node not already holding this block.
        std::vector<std::string> candidates;
        for (const auto& [name, dn] : datanodes_) {
          if (eligible(dn) &&
              std::find(holders.begin(), holders.end(), name) ==
                  holders.end()) {
            candidates.push_back(name);
          }
        }
        if (candidates.empty()) break;  // under-replicated, nothing to do
        rng_.shuffle(candidates);
        const std::string target = candidates.front();
        DataNode& dn = datanode(target);
        dn.used += block.size;
        dn.block_count += 1;
        block.replicas.push_back(Replica{target, false});
        holders.push_back(target);
      }
    }
  }
}

std::vector<DataNodeReport> HdfsCluster::datanode_reports() const {
  std::vector<DataNodeReport> out;
  for (const auto& name : datanode_names_) {
    const DataNode& dn = datanodes_.at(name);
    out.push_back(DataNodeReport{dn.name, dn.capacity, dn.used, dn.alive,
                                 dn.block_count, dn.decommissioning});
  }
  return out;
}

std::size_t HdfsCluster::balance(double threshold_fraction) {
  std::size_t moves = 0;
  for (int round = 0; round < 10000; ++round) {
    // Mean usage over live nodes.
    std::vector<DataNode*> live;
    common::Bytes total = 0;
    for (auto& [name, dn] : datanodes_) {
      if (eligible(dn)) {
        live.push_back(&dn);
        total += dn.used;
      }
    }
    if (live.size() < 2) return moves;
    const double mean =
        static_cast<double>(total) / static_cast<double>(live.size());
    const double band = threshold_fraction * mean;
    DataNode* over = nullptr;
    for (auto* dn : live) {
      if (static_cast<double>(dn->used) > mean + band &&
          (over == nullptr || dn->used > over->used)) {
        over = dn;
      }
    }
    if (over == nullptr) return moves;

    // Move one replica off the most-loaded node onto the least-loaded
    // node not already holding that block.
    bool moved = false;
    for (auto& [path, meta] : files_) {
      for (auto& block : meta.blocks) {
        auto replica_it =
            std::find_if(block.replicas.begin(), block.replicas.end(),
                         [&](const Replica& r) {
                           return r.node == over->name;
                         });
        if (replica_it == block.replicas.end()) continue;
        DataNode* target = nullptr;
        for (auto* dn : live) {
          if (dn == over) continue;
          const bool holds = std::any_of(
              block.replicas.begin(), block.replicas.end(),
              [&](const Replica& r) { return r.node == dn->name; });
          if (holds) continue;
          if (target == nullptr || dn->used < target->used) target = dn;
        }
        if (target == nullptr ||
            static_cast<double>(target->used + block.size) >
                static_cast<double>(over->used)) {
          continue;  // the move would not improve the spread
        }
        over->used -= block.size;
        over->block_count -= 1;
        target->used += block.size;
        target->block_count += 1;
        replica_it->node = target->name;
        replica_it->on_ssd = false;
        ++moves;
        moved = true;
        break;
      }
      if (moved) break;
    }
    if (!moved) return moves;  // no legal improving move
  }
  return moves;
}

common::Bytes HdfsCluster::used_bytes() const {
  common::Bytes total = 0;
  for (const auto& [name, dn] : datanodes_) total += dn.used;
  return total;
}

common::Json HdfsCluster::summary() const {
  common::Json j;
  j["namenode"] = namenode_;
  j["files"] = static_cast<std::int64_t>(files_.size());
  j["usedBytes"] = used_bytes();
  std::int64_t live = 0;
  for (const auto& [name, dn] : datanodes_) live += dn.alive ? 1 : 0;
  j["liveDataNodes"] = live;
  j["blockSize"] = config_.block_size;
  return j;
}

}  // namespace hoh::hdfs
