#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "common/json.h"
#include "common/random.h"
#include "hdfs/block.h"
#include "sim/engine.h"

/// \file hdfs_cluster.h
/// Metadata-level HDFS simulator: one NameNode, one DataNode per
/// allocation node, block placement with replication, locality queries
/// and heterogeneous storage policies. Data contents are never
/// materialized — files carry sizes only; transfer times come from the
/// machine's storage/network models. This is the filesystem the Mode-I
/// LRM bootstraps and the YARN Application Master queries for
/// data-locality-aware container requests.
///
/// Thread-confinement: everything in this file runs on the simulation
/// thread only (all mutation happens inside sim::Engine callbacks, which
/// the engine runs sequentially). No locks are needed or taken; do not
/// call into NameNode/DataNode from worker threads.

namespace hoh::hdfs {

/// HDFS deployment configuration (the knobs hdfs-site.xml would carry).
struct HdfsConfig {
  common::Bytes block_size = 128 * common::kMiB;
  int default_replication = 3;
  common::Bytes datanode_capacity = 200 * common::kGiB;
  common::Seconds replication_monitor_interval = 3.0;

  /// Replicas copied off decommissioning DataNodes per monitor round
  /// (dfs.namenode.replication.max-streams equivalent) — bounds how fast
  /// a drain can proceed, making "shrink waits for re-replication"
  /// observable in simulated time.
  int decommission_blocks_per_round = 50;

  /// Number of racks the nodes are spread across (round-robin by node
  /// index). With > 1 rack, placement follows the classic HDFS policy:
  /// replica 1 on the writer, replica 2 on a different rack, replica 3
  /// on the same rack as replica 2.
  int racks = 1;
};

/// Report row for one DataNode (dfsadmin -report equivalent).
struct DataNodeReport {
  std::string node;
  common::Bytes capacity = 0;
  common::Bytes used = 0;
  bool alive = true;
  std::size_t block_count = 0;
  bool decommissioning = false;
};

/// One NameNode + DataNode ensemble over an allocation.
class HdfsCluster {
 public:
  /// \p nodes: names of the allocation's nodes (the first one also hosts
  /// the NameNode, as the paper's LRM does with the agent node).
  HdfsCluster(sim::Engine& engine, const cluster::MachineProfile& machine,
              std::vector<std::string> nodes, HdfsConfig config = {},
              std::uint64_t seed = 42);

  const HdfsConfig& config() const { return config_; }
  const std::string& namenode() const { return namenode_; }
  const std::vector<std::string>& datanodes() const { return datanode_names_; }

  /// Rack id of a DataNode in [0, config().racks).
  int rack_of(const std::string& node) const;

  /// Creates a file of \p size bytes. Blocks are placed with the classic
  /// HDFS policy: replica 1 on \p writer_node (if it hosts a DataNode),
  /// replicas 2..n spread over distinct other nodes. Returns the write
  /// pipeline duration (caller may schedule it; metadata is immediate, as
  /// callers in simulation treat writes as atomic at call time).
  common::Seconds create_file(const std::string& path, common::Bytes size,
                              const std::string& writer_node = "",
                              std::optional<int> replication = std::nullopt,
                              StoragePolicy policy = StoragePolicy::kDefault);

  bool exists(const std::string& path) const;
  const FileMeta& stat(const std::string& path) const;
  void remove(const std::string& path);
  std::vector<std::string> list(const std::string& prefix = "") const;

  /// Estimated time to read the whole file from \p reader_node with
  /// \p concurrent_streams other readers active: local replicas stream
  /// from the local disk tier, remote ones add a network hop.
  common::Seconds read_time(const std::string& path,
                            const std::string& reader_node,
                            int concurrent_streams = 1) const;

  /// Fraction of the file's blocks with a replica on \p node in [0,1].
  /// This is what a locality-aware Application Master maximizes.
  double locality(const std::string& path, const std::string& node) const;

  /// Node hosting the most blocks of \p path (ties: lexicographically
  /// smallest), or empty if the file has no blocks.
  std::string best_node(const std::string& path) const;

  /// Marks a DataNode dead; its replicas are re-replicated onto the
  /// remaining DataNodes after the replication-monitor interval (failure
  /// injection for tests).
  void fail_datanode(const std::string& node);

  /// Registers a new DataNode (an elastic pilot growing: the LRM starts a
  /// DataNode daemon on a freshly added allocation node). The node starts
  /// empty; `balance()` or new writes spread data onto it.
  void add_datanode(const std::string& node);

  /// Begins *graceful* decommission: the node stops receiving new blocks
  /// and a periodic monitor copies its replicas onto eligible DataNodes
  /// (bounded by `decommission_blocks_per_round` per monitor interval)
  /// WITHOUT dropping the originals — no window of under-replication,
  /// unlike `fail_datanode`.
  void decommission_datanode(const std::string& node);

  /// True once every block hosted by \p node has at least its target
  /// replication on live, non-decommissioning DataNodes (the drain
  /// invariant the shrink path waits on). Dead nodes report true.
  bool decommission_complete(const std::string& node) const;

  /// Deregisters a DataNode (drained or dead) — the elastic shrink path's
  /// final step before the allocation node is returned. Remaining replica
  /// pointers to it are dropped; callers should only remove after
  /// `decommission_complete()` to preserve replication.
  void remove_datanode(const std::string& node);

  /// True when every block of every file has its target replication on
  /// live, non-decommissioning DataNodes (clamped to the number of such
  /// nodes). The zero-block-loss property tests assert this.
  bool all_blocks_replicated() const;

  std::vector<DataNodeReport> datanode_reports() const;

  /// dfs balancer: moves replicas from over-utilized to under-utilized
  /// live DataNodes until every node's usage is within
  /// \p threshold_fraction of the mean (or no legal move remains —
  /// replicas of one block stay on distinct nodes). Returns the number
  /// of block moves performed.
  std::size_t balance(double threshold_fraction = 0.1);

  /// Total bytes stored (all replicas).
  common::Bytes used_bytes() const;

  /// dfsadmin-style JSON summary.
  common::Json summary() const;

 private:
  struct DataNode {
    std::string name;
    common::Bytes capacity = 0;
    common::Bytes used = 0;
    bool alive = true;
    std::size_t block_count = 0;
    bool has_ssd = false;
    int rack = 0;
    bool decommissioning = false;
  };

  DataNode& datanode(const std::string& node);
  const DataNode& datanode(const std::string& node) const;

  /// Eligible to receive new replicas: alive and not decommissioning.
  static bool eligible(const DataNode& dn) {
    return dn.alive && !dn.decommissioning;
  }

  int eligible_count() const;

  /// Picks a placement of \p count distinct live DataNodes, preferring
  /// \p first if valid. Throws ResourceError when fewer live nodes exist.
  std::vector<std::string> place_replicas(int count, const std::string& first);

  void re_replicate();
  void decommission_monitor();

  sim::Engine& engine_;
  const cluster::MachineProfile& machine_;
  HdfsConfig config_;
  common::Rng rng_;

  std::string namenode_;
  std::vector<std::string> datanode_names_;
  std::map<std::string, DataNode> datanodes_;
  std::map<std::string, FileMeta> files_;
  std::uint64_t next_block_id_ = 1;
  bool decommission_monitor_running_ = false;
};

}  // namespace hoh::hdfs
