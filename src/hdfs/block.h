#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

/// \file block.h
/// HDFS metadata value types: blocks, replicas and storage policies.

namespace hoh::hdfs {

/// HDFS heterogeneous-storage policies (paper SS-II: "the newly added
/// HDFS heterogeneous storage support"). The policy selects which local
/// tier a DataNode stores replicas on.
enum class StoragePolicy {
  kDefault,   // local disk
  kAllSsd,    // local SSD tier
  kOneSsd,    // first replica SSD, rest disk
  kCold,      // archival: all replicas to the shared filesystem
  kLazyPersist,  // memory first, flushed to disk
};

std::string to_string(StoragePolicy policy);

/// One replica of a block on a specific DataNode.
struct Replica {
  std::string node;
  bool on_ssd = false;
};

/// One HDFS block with its replica set.
struct Block {
  std::uint64_t id = 0;
  common::Bytes size = 0;
  std::vector<Replica> replicas;
};

/// NameNode-side file metadata.
struct FileMeta {
  std::string path;
  common::Bytes size = 0;
  int replication = 3;
  StoragePolicy policy = StoragePolicy::kDefault;
  std::vector<Block> blocks;
};

}  // namespace hoh::hdfs
