#pragma once

#include <string>
#include <vector>

#include "hdfs/hdfs_cluster.h"

/// \file input_splits.h
/// Hadoop-style input splits: block-aligned chunks of an HDFS file with
/// the hosts holding each chunk's replicas. This is what a MapReduce
/// ApplicationMaster feeds into locality-aware container requests — the
/// bridge between HDFS block placement and the data-locality scheduling
/// the paper's SS-II discusses ("Data locality, e.g. between HDFS blocks
/// and container locations, need to [be] managed by the Application
/// Master by requesting containers on specific nodes").

namespace hoh::hdfs {

/// One input split (one map task's input).
struct InputSplit {
  std::string path;
  common::Bytes offset = 0;
  common::Bytes length = 0;
  /// Nodes holding a live replica, most-preferred first.
  std::vector<std::string> hosts;
};

/// Computes block-aligned splits for \p path. \p target_splits > 0 merges
/// adjacent blocks so at most that many splits result (a split's hosts
/// are then the first block's); 0 = one split per block.
std::vector<InputSplit> compute_input_splits(const HdfsCluster& fs,
                                             const std::string& path,
                                             int target_splits = 0);

/// Convenience for YarnMrJobSpec::split_locations: the first live host
/// of each split (empty string when a split has none).
std::vector<std::string> preferred_hosts(
    const std::vector<InputSplit>& splits);

}  // namespace hoh::hdfs
