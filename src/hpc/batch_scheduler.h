#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "common/bitmap.h"
#include "hpc/batch_job.h"
#include "sim/engine.h"

/// \file batch_scheduler.h
/// Event-driven HPC batch scheduler (the system-level scheduler in the
/// paper's Fig. 1). Manages a pool of whole nodes; jobs wait in a queue,
/// start after a prolog delay, and are killed at their walltime. Supports
/// FIFO and conservative backfill. The SLURM/PBS/SGE front-ends
/// (frontends.h) wrap one of these with scheduler-specific id formats and
/// environment-variable conventions.

namespace hoh::hpc {

/// Callback fired when a job transitions to kRunning; receives the node
/// allocation the payload (e.g. a pilot agent) runs on.
using JobStartCallback =
    std::function<void(const std::string& job_id,
                       const cluster::Allocation& allocation)>;

/// Callback fired when a job reaches a final state.
using JobEndCallback =
    std::function<void(const std::string& job_id, BatchJobState final_state)>;

/// Discrete-event batch scheduler over a node pool.
class BatchScheduler {
 public:
  enum class Policy { kFifo, kBackfill };

  /// \p managed_nodes limits the pool actually simulated (profiles
  /// describe thousands of nodes; benches only need a few). 0 means
  /// profile.total_nodes.
  BatchScheduler(sim::Engine& engine, cluster::MachineProfile profile,
                 int managed_nodes = 0);

  const cluster::MachineProfile& profile() const { return profile_; }

  void set_policy(Policy policy) { policy_ = policy; }
  Policy policy() const { return policy_; }

  /// Extra queue wait applied to every job before it becomes eligible,
  /// modelling machine load (default 0: dedicated benchmarking
  /// reservation, matching the paper's setup).
  void set_base_queue_wait(common::Seconds wait) { base_queue_wait_ = wait; }

  /// Submits a job. Returns its id after the submission round trip has
  /// been accounted (the id is available immediately; the job becomes
  /// eligible after submit latency + base queue wait).
  std::string submit(const BatchJobRequest& request, JobStartCallback on_start,
                     JobEndCallback on_end = {});

  /// Payload signals completion (pilot agent done). No-op unless running.
  void complete(const std::string& job_id);

  /// User cancels the job in any non-final state.
  void cancel(const std::string& job_id);

  BatchJobState state(const std::string& job_id) const;

  /// Time the job spent pending (valid once running/final).
  common::Seconds queue_wait(const std::string& job_id) const;

  std::size_t pending_count() const;
  std::size_t running_count() const;
  int free_nodes() const;
  int pool_size() const { return static_cast<int>(pool_.size()); }
  int live_node_count() const;

  /// Names of all managed nodes (dead or alive), in pool order. The
  /// FailureInjector uses this to build its target set.
  std::vector<std::string> node_names() const;

  /// Node object by name (slow-node injection sets its speed factor);
  /// nullptr when unknown.
  cluster::Node* node(const std::string& name);

  /// Simulates a node crash: running jobs holding the node fail, the
  /// node leaves the pool until repair() is called.
  void fail_node(const std::string& node);

  /// Returns a failed node to service.
  void repair_node(const std::string& node);

 private:
  struct JobRecord {
    BatchJobRequest request;
    BatchJobState state = BatchJobState::kPending;
    common::Seconds submit_time = 0.0;
    common::Seconds eligible_time = 0.0;
    common::Seconds start_time = 0.0;
    common::Seconds end_time = 0.0;
    cluster::Allocation allocation;
    JobStartCallback on_start;
    JobEndCallback on_end;
    sim::EventHandle walltime_event;
    bool eligible = false;
  };

  JobRecord& find(const std::string& job_id);
  const JobRecord& find(const std::string& job_id) const;

  void try_schedule();
  bool try_start(const std::string& job_id, JobRecord& job);
  void start_job(const std::string& job_id, JobRecord& job);
  void finish_job(const std::string& job_id, JobRecord& job,
                  BatchJobState final_state);

  /// Earliest time at which \p nodes nodes will be free, assuming all
  /// running jobs run to their walltime (conservative backfill bound).
  common::Seconds earliest_free_time(int nodes) const;

  std::vector<std::shared_ptr<cluster::Node>> take_nodes(int count);
  void return_nodes(const cluster::Allocation& allocation);

  sim::Engine& engine_;
  cluster::MachineProfile profile_;
  Policy policy_ = Policy::kFifo;
  common::Seconds base_queue_wait_ = 0.0;

  std::vector<std::shared_ptr<cluster::Node>> pool_;
  /// Bitmap resource accounting (DESIGN.md §13): a set bit in free_
  /// means idle-and-alive, so allocation is a find-first-set scan and
  /// free_nodes() a popcount — no per-node walk at 10k nodes. A node
  /// that is neither free nor dead is allocated; node_job_ names the
  /// running job holding it (O(1) victim lookup on node failure).
  common::Bitmap free_;
  common::Bitmap dead_;
  std::vector<std::string> node_job_;
  std::map<std::string, std::size_t> node_index_;

  std::deque<std::string> queue_;  // pending job ids, submission order
  std::map<std::string, JobRecord> jobs_;
  std::size_t pending_jobs_ = 0;
  std::size_t running_jobs_ = 0;
  std::uint64_t next_job_number_ = 1;
};

}  // namespace hoh::hpc
