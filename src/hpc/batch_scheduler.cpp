#include "hpc/batch_scheduler.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::hpc {

std::string to_string(BatchJobState state) {
  switch (state) {
    case BatchJobState::kPending:
      return "PENDING";
    case BatchJobState::kRunning:
      return "RUNNING";
    case BatchJobState::kCompleted:
      return "COMPLETED";
    case BatchJobState::kCancelled:
      return "CANCELLED";
    case BatchJobState::kFailed:
      return "FAILED";
    case BatchJobState::kTimedOut:
      return "TIMEOUT";
  }
  return "?";
}

BatchScheduler::BatchScheduler(sim::Engine& engine,
                               cluster::MachineProfile profile,
                               int managed_nodes)
    : engine_(engine), profile_(std::move(profile)) {
  int count = managed_nodes > 0 ? managed_nodes : profile_.total_nodes;
  if (count <= 0) {
    throw common::ConfigError("BatchScheduler: node pool must be non-empty");
  }
  pool_.reserve(static_cast<std::size_t>(count));
  free_.assign(static_cast<std::size_t>(count), true);
  dead_.assign(static_cast<std::size_t>(count), false);
  node_job_.assign(static_cast<std::size_t>(count), std::string{});
  for (int i = 0; i < count; ++i) {
    auto name = common::strformat("%s-n%04d", profile_.name.c_str(), i);
    node_index_[name] = pool_.size();
    pool_.push_back(std::make_shared<cluster::Node>(name, profile_.node));
  }
}

std::string BatchScheduler::submit(const BatchJobRequest& request,
                                   JobStartCallback on_start,
                                   JobEndCallback on_end) {
  if (request.nodes <= 0) {
    throw common::ConfigError("BatchScheduler: job must request >= 1 node");
  }
  if (request.nodes > pool_size()) {
    throw common::ResourceError(common::strformat(
        "BatchScheduler: job requests %d nodes, pool has %d", request.nodes,
        pool_size()));
  }
  const std::string job_id =
      common::strformat("%s.%llu", profile_.name.c_str(),
                        static_cast<unsigned long long>(next_job_number_++));
  JobRecord job;
  job.request = request;
  job.submit_time = engine_.now();
  job.eligible_time =
      engine_.now() + profile_.scheduler_submit_latency + base_queue_wait_;
  job.on_start = std::move(on_start);
  job.on_end = std::move(on_end);
  jobs_.emplace(job_id, std::move(job));
  queue_.push_back(job_id);
  ++pending_jobs_;

  engine_.schedule(profile_.scheduler_submit_latency + base_queue_wait_,
                   [this, job_id] {
                     auto it = jobs_.find(job_id);
                     if (it == jobs_.end()) return;
                     it->second.eligible = true;
                     try_schedule();
                   });
  return job_id;
}

BatchScheduler::JobRecord& BatchScheduler::find(const std::string& job_id) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("BatchScheduler: unknown job " + job_id);
  }
  return it->second;
}

const BatchScheduler::JobRecord& BatchScheduler::find(
    const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("BatchScheduler: unknown job " + job_id);
  }
  return it->second;
}

BatchJobState BatchScheduler::state(const std::string& job_id) const {
  return find(job_id).state;
}

common::Seconds BatchScheduler::queue_wait(const std::string& job_id) const {
  const JobRecord& job = find(job_id);
  if (job.state == BatchJobState::kPending) {
    return engine_.now() - job.submit_time;
  }
  return job.start_time - job.submit_time;
}

std::size_t BatchScheduler::pending_count() const { return pending_jobs_; }

std::size_t BatchScheduler::running_count() const { return running_jobs_; }

int BatchScheduler::free_nodes() const {
  return static_cast<int>(free_.count());
}

int BatchScheduler::live_node_count() const {
  return static_cast<int>(pool_.size() - dead_.count());
}

std::vector<std::string> BatchScheduler::node_names() const {
  std::vector<std::string> names;
  names.reserve(pool_.size());
  for (const auto& node : pool_) names.push_back(node->name());
  return names;
}

cluster::Node* BatchScheduler::node(const std::string& name) {
  const auto it = node_index_.find(name);
  if (it == node_index_.end()) return nullptr;
  return pool_[it->second].get();
}

void BatchScheduler::fail_node(const std::string& node) {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw common::NotFoundError("BatchScheduler: unknown node " + node);
  }
  const std::size_t index = it->second;
  if (dead_.test(index)) return;
  dead_.set(index);
  free_.reset(index);
  // A running job holding the node dies with it (O(1) via node_job_).
  const std::string victim = node_job_[index];
  if (!victim.empty()) {
    finish_job(victim, jobs_.at(victim), BatchJobState::kFailed);
  }
}

void BatchScheduler::repair_node(const std::string& node) {
  auto it = node_index_.find(node);
  if (it == node_index_.end()) {
    throw common::NotFoundError("BatchScheduler: unknown node " + node);
  }
  const std::size_t index = it->second;
  if (!dead_.test(index)) return;
  dead_.reset(index);
  // Only returns to the free pool if no (failed) job still holds it.
  if (node_job_[index].empty()) free_.set(index);
  try_schedule();
}

std::vector<std::shared_ptr<cluster::Node>> BatchScheduler::take_nodes(
    int count) {
  std::vector<std::shared_ptr<cluster::Node>> taken;
  taken.reserve(static_cast<std::size_t>(count));
  // Lowest free index first, exactly as the old linear scan placed them.
  for (std::size_t i = free_.find_first();
       i != common::Bitmap::npos && static_cast<int>(taken.size()) < count;
       i = free_.find_first(i + 1)) {
    free_.reset(i);
    taken.push_back(pool_[i]);
  }
  if (static_cast<int>(taken.size()) != count) {
    throw common::StateError("BatchScheduler: take_nodes underflow");
  }
  return taken;
}

void BatchScheduler::return_nodes(const cluster::Allocation& allocation) {
  for (const auto& node : allocation.nodes()) {
    auto it = node_index_.find(node->name());
    if (it == node_index_.end()) continue;
    node_job_[it->second].clear();
    if (!dead_.test(it->second)) free_.set(it->second);
  }
}

common::Seconds BatchScheduler::earliest_free_time(int nodes) const {
  int free = free_nodes();
  if (free >= nodes) return engine_.now();
  // Collect (end_time, nodes) of running jobs ordered by walltime expiry.
  std::vector<std::pair<common::Seconds, int>> ends;
  for (const auto& [id, job] : jobs_) {
    if (job.state == BatchJobState::kRunning) {
      ends.emplace_back(job.start_time + job.request.walltime,
                        job.request.nodes);
    }
  }
  std::sort(ends.begin(), ends.end());
  for (const auto& [t, n] : ends) {
    free += n;
    if (free >= nodes) return t;
  }
  // Dead nodes can make a request unsatisfiable even with every running
  // job drained; returning now() here used to poison the backfill
  // reservation (everything compared against "free right now") and
  // starve the queue until repair.
  return std::numeric_limits<common::Seconds>::infinity();
}

void BatchScheduler::try_schedule() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Head of line = highest priority among eligible pending jobs; ties
    // break in submission (queue) order. Jobs asking for more nodes than
    // are currently alive are held (skipped): they cannot start until a
    // repair, and letting one of them be the head would block every job
    // behind it for as long as the node stays dead.
    const int live = live_node_count();
    std::string head_id;
    int head_priority = 0;
    for (const auto& id : queue_) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      const JobRecord& job = it->second;
      if (job.state != BatchJobState::kPending || !job.eligible) continue;
      if (job.request.nodes > live) continue;
      if (head_id.empty() || job.request.priority > head_priority) {
        head_id = id;
        head_priority = job.request.priority;
      }
    }
    if (head_id.empty()) return;

    JobRecord& head = jobs_.at(head_id);
    if (head.request.nodes <= free_nodes()) {
      start_job(head_id, head);
      progressed = true;
      continue;
    }
    if (policy_ == Policy::kFifo) return;

    // Conservative backfill: a later job may start now only if it finishes
    // (by walltime) before the head job's reservation time, or does not
    // use nodes the head job needs (i.e. still leaves the head's start
    // feasible at its reservation).
    const common::Seconds reservation =
        earliest_free_time(head.request.nodes);
    for (const auto& id : queue_) {
      if (id == head_id) continue;
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      JobRecord& job = it->second;
      if (job.state != BatchJobState::kPending || !job.eligible) continue;
      if (job.request.nodes > free_nodes()) continue;
      const bool finishes_before_reservation =
          engine_.now() + job.request.walltime <= reservation;
      const bool leaves_head_feasible =
          free_nodes() - job.request.nodes >= head.request.nodes;
      if (finishes_before_reservation || leaves_head_feasible) {
        start_job(id, job);
        progressed = true;
        break;
      }
    }
  }
}

void BatchScheduler::start_job(const std::string& job_id, JobRecord& job) {
  job.state = BatchJobState::kRunning;
  job.start_time = engine_.now();
  job.allocation = cluster::Allocation(take_nodes(job.request.nodes));
  for (const auto& node : job.allocation.nodes()) {
    node_job_[node_index_.at(node->name())] = job_id;
  }
  --pending_jobs_;
  ++running_jobs_;
  queue_.erase(std::find(queue_.begin(), queue_.end(), job_id));

  // Walltime enforcement.
  job.walltime_event =
      engine_.schedule(job.request.walltime, [this, job_id] {
        auto it = jobs_.find(job_id);
        if (it == jobs_.end() || it->second.state != BatchJobState::kRunning) {
          return;
        }
        finish_job(job_id, it->second, BatchJobState::kTimedOut);
      });

  // Payload starts after the prolog.
  engine_.schedule(profile_.job_prolog_time, [this, job_id] {
    auto it = jobs_.find(job_id);
    if (it == jobs_.end() || it->second.state != BatchJobState::kRunning) {
      return;
    }
    if (it->second.on_start) it->second.on_start(job_id, it->second.allocation);
  });
}

void BatchScheduler::finish_job(const std::string& job_id, JobRecord& job,
                                BatchJobState final_state) {
  engine_.cancel(job.walltime_event);
  job.state = final_state;
  job.end_time = engine_.now();
  --running_jobs_;
  return_nodes(job.allocation);
  job.allocation = cluster::Allocation{};
  if (job.on_end) job.on_end(job_id, final_state);
  // Freed nodes may unblock queued jobs after the epilog.
  engine_.schedule(profile_.job_epilog_time, [this] { try_schedule(); });
}

void BatchScheduler::complete(const std::string& job_id) {
  JobRecord& job = find(job_id);
  if (job.state != BatchJobState::kRunning) return;
  finish_job(job_id, job, BatchJobState::kCompleted);
}

void BatchScheduler::cancel(const std::string& job_id) {
  JobRecord& job = find(job_id);
  if (is_final(job.state)) return;
  if (job.state == BatchJobState::kPending) {
    job.state = BatchJobState::kCancelled;
    job.end_time = engine_.now();
    --pending_jobs_;
    queue_.erase(std::find(queue_.begin(), queue_.end(), job_id));
    if (job.on_end) job.on_end(job_id, BatchJobState::kCancelled);
    return;
  }
  finish_job(job_id, job, BatchJobState::kCancelled);
}

}  // namespace hoh::hpc
