#pragma once

#include <string>

#include "common/units.h"

/// \file batch_job.h
/// Value types for jobs submitted to the simulated HPC batch systems.

namespace hoh::hpc {

/// Lifecycle of a batch job. kCompleted is reached when the payload calls
/// complete(); kTimedOut when the walltime expires first.
enum class BatchJobState {
  kPending,
  kRunning,
  kCompleted,
  kCancelled,
  kFailed,
  kTimedOut,
};

std::string to_string(BatchJobState state);

/// True for states a job can never leave.
constexpr bool is_final(BatchJobState s) {
  return s == BatchJobState::kCompleted || s == BatchJobState::kCancelled ||
         s == BatchJobState::kFailed || s == BatchJobState::kTimedOut;
}

/// What the user asks the batch system for. Whole-node allocation, the
/// HPC convention both XSEDE machines use.
struct BatchJobRequest {
  std::string name = "job";
  int nodes = 1;
  common::Seconds walltime = 3600.0;
  std::string queue = "normal";
  std::string project;

  /// Scheduling priority (higher runs first); ties break FIFO.
  int priority = 0;
};

}  // namespace hoh::hpc
