#pragma once

#include <map>
#include <memory>
#include <string>

#include "hpc/batch_scheduler.h"

/// \file frontends.h
/// Scheduler front-ends reproducing the user-visible conventions of
/// SLURM, PBS/Torque and SGE: command-style submission, scheduler-local
/// job ids, and the environment variables a payload (the RADICAL-Pilot
/// agent's Local Resource Manager) inspects to discover its allocation.
/// The SAGA adaptors (saga/) sit on top of these.

namespace hoh::hpc {

enum class SchedulerKind { kSlurm, kPbs, kSge };

std::string to_string(SchedulerKind kind);

/// Abstract front-end. One front-end wraps one BatchScheduler.
class SchedulerFrontend {
 public:
  explicit SchedulerFrontend(BatchScheduler& scheduler)
      : scheduler_(scheduler) {}
  virtual ~SchedulerFrontend() = default;

  SchedulerFrontend(const SchedulerFrontend&) = delete;
  SchedulerFrontend& operator=(const SchedulerFrontend&) = delete;

  virtual SchedulerKind kind() const = 0;

  /// Submits a job (sbatch / qsub). Returns the scheduler-local id.
  std::string submit(const BatchJobRequest& request, JobStartCallback on_start,
                     JobEndCallback on_end = {});

  /// scancel / qdel.
  void cancel(const std::string& frontend_id);

  /// squeue / qstat for one job.
  BatchJobState state(const std::string& frontend_id) const;

  /// Payload signals completion.
  void complete(const std::string& frontend_id);

  /// The environment the batch system exports into a *running* job —
  /// SLURM_JOB_NODELIST, PBS_NODEFILE-equivalent, etc. Throws StateError
  /// for jobs that are not running.
  virtual std::map<std::string, std::string> environment(
      const std::string& frontend_id) const = 0;

  BatchScheduler& scheduler() { return scheduler_; }
  const BatchScheduler& scheduler() const { return scheduler_; }

 protected:
  /// Front-end id <-> backend id mapping.
  std::string backend_id(const std::string& frontend_id) const;
  virtual std::string make_frontend_id(const std::string& backend_id) = 0;

  /// Allocation for a running job (for environment rendering).
  const cluster::Allocation& running_allocation(
      const std::string& frontend_id) const;

  BatchScheduler& scheduler_;
  std::map<std::string, std::string> frontend_to_backend_;
  std::map<std::string, cluster::Allocation> allocations_;
  std::uint64_t counter_ = 1000;
};

/// SLURM: numeric ids, SLURM_* environment.
class SlurmFrontend : public SchedulerFrontend {
 public:
  using SchedulerFrontend::SchedulerFrontend;
  SchedulerKind kind() const override { return SchedulerKind::kSlurm; }
  std::map<std::string, std::string> environment(
      const std::string& frontend_id) const override;

 protected:
  std::string make_frontend_id(const std::string& backend_id) override;
};

/// PBS/Torque: "<num>.<server>" ids, PBS_* environment with a nodefile.
class PbsFrontend : public SchedulerFrontend {
 public:
  using SchedulerFrontend::SchedulerFrontend;
  SchedulerKind kind() const override { return SchedulerKind::kPbs; }
  std::map<std::string, std::string> environment(
      const std::string& frontend_id) const override;

 protected:
  std::string make_frontend_id(const std::string& backend_id) override;
};

/// SGE: numeric ids, SGE_/NSLOTS environment with a PE hostfile.
class SgeFrontend : public SchedulerFrontend {
 public:
  using SchedulerFrontend::SchedulerFrontend;
  SchedulerKind kind() const override { return SchedulerKind::kSge; }
  std::map<std::string, std::string> environment(
      const std::string& frontend_id) const override;

 protected:
  std::string make_frontend_id(const std::string& backend_id) override;
};

/// Factory for the front-end matching \p kind.
std::unique_ptr<SchedulerFrontend> make_frontend(SchedulerKind kind,
                                                 BatchScheduler& scheduler);

}  // namespace hoh::hpc
