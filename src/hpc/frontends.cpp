#include "hpc/frontends.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::hpc {

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kSlurm:
      return "slurm";
    case SchedulerKind::kPbs:
      return "pbs";
    case SchedulerKind::kSge:
      return "sge";
  }
  return "?";
}

std::string SchedulerFrontend::submit(const BatchJobRequest& request,
                                      JobStartCallback on_start,
                                      JobEndCallback on_end) {
  // Wrap the start callback so the front-end can render the environment
  // of a running job later.
  std::string frontend_id;  // filled below; captured by reference-to-copy
  auto shared_id = std::make_shared<std::string>();
  auto wrapped_start = [this, shared_id, user_start = std::move(on_start)](
                           const std::string& /*backend_id*/,
                           const cluster::Allocation& allocation) {
    allocations_[*shared_id] = allocation;
    if (user_start) user_start(*shared_id, allocation);
  };
  auto wrapped_end = [this, shared_id, user_end = std::move(on_end)](
                         const std::string& /*backend_id*/,
                         BatchJobState final_state) {
    allocations_.erase(*shared_id);
    if (user_end) user_end(*shared_id, final_state);
  };
  const std::string bid =
      scheduler_.submit(request, wrapped_start, wrapped_end);
  frontend_id = make_frontend_id(bid);
  *shared_id = frontend_id;
  frontend_to_backend_[frontend_id] = bid;
  return frontend_id;
}

std::string SchedulerFrontend::backend_id(
    const std::string& frontend_id) const {
  auto it = frontend_to_backend_.find(frontend_id);
  if (it == frontend_to_backend_.end()) {
    throw common::NotFoundError("unknown job id: " + frontend_id);
  }
  return it->second;
}

void SchedulerFrontend::cancel(const std::string& frontend_id) {
  scheduler_.cancel(backend_id(frontend_id));
}

BatchJobState SchedulerFrontend::state(const std::string& frontend_id) const {
  return scheduler_.state(backend_id(frontend_id));
}

void SchedulerFrontend::complete(const std::string& frontend_id) {
  scheduler_.complete(backend_id(frontend_id));
}

const cluster::Allocation& SchedulerFrontend::running_allocation(
    const std::string& frontend_id) const {
  auto it = allocations_.find(frontend_id);
  if (it == allocations_.end()) {
    throw common::StateError("job " + frontend_id +
                             " is not running; no environment available");
  }
  return it->second;
}

std::string SlurmFrontend::make_frontend_id(const std::string&) {
  return std::to_string(++counter_);
}

std::map<std::string, std::string> SlurmFrontend::environment(
    const std::string& frontend_id) const {
  const auto& alloc = running_allocation(frontend_id);
  std::map<std::string, std::string> env;
  env["SLURM_JOB_ID"] = frontend_id;
  env["SLURM_NNODES"] = std::to_string(alloc.size());
  env["SLURM_JOB_NODELIST"] = common::join(alloc.node_names(), ",");
  env["SLURM_CPUS_ON_NODE"] =
      std::to_string(alloc.nodes().empty() ? 0 : alloc.nodes()[0]->spec().cores);
  env["SLURM_MEM_PER_NODE"] = std::to_string(
      alloc.nodes().empty() ? 0 : alloc.nodes()[0]->spec().memory_mb);
  return env;
}

std::string PbsFrontend::make_frontend_id(const std::string&) {
  return common::strformat("%llu.%s-pbs-server",
                           static_cast<unsigned long long>(++counter_),
                           scheduler_.profile().name.c_str());
}

std::map<std::string, std::string> PbsFrontend::environment(
    const std::string& frontend_id) const {
  const auto& alloc = running_allocation(frontend_id);
  std::map<std::string, std::string> env;
  env["PBS_JOBID"] = frontend_id;
  env["PBS_NUM_NODES"] = std::to_string(alloc.size());
  // Real PBS exports a path; the simulated LRM reads the contents
  // directly. One line per (node, core) pair as in a real nodefile.
  std::vector<std::string> lines;
  for (const auto& node : alloc.nodes()) {
    for (int c = 0; c < node->spec().cores; ++c) lines.push_back(node->name());
  }
  env["PBS_NODEFILE_CONTENTS"] = common::join(lines, "\n");
  env["PBS_NP"] = std::to_string(alloc.total_cores());
  return env;
}

std::string SgeFrontend::make_frontend_id(const std::string&) {
  return std::to_string(++counter_);
}

std::map<std::string, std::string> SgeFrontend::environment(
    const std::string& frontend_id) const {
  const auto& alloc = running_allocation(frontend_id);
  std::map<std::string, std::string> env;
  env["JOB_ID"] = frontend_id;
  env["NSLOTS"] = std::to_string(alloc.total_cores());
  env["NHOSTS"] = std::to_string(alloc.size());
  std::vector<std::string> lines;
  for (const auto& node : alloc.nodes()) {
    lines.push_back(common::strformat("%s %d", node->name().c_str(),
                                      node->spec().cores));
  }
  env["PE_HOSTFILE_CONTENTS"] = common::join(lines, "\n");
  return env;
}

std::unique_ptr<SchedulerFrontend> make_frontend(SchedulerKind kind,
                                                 BatchScheduler& scheduler) {
  switch (kind) {
    case SchedulerKind::kSlurm:
      return std::make_unique<SlurmFrontend>(scheduler);
    case SchedulerKind::kPbs:
      return std::make_unique<PbsFrontend>(scheduler);
    case SchedulerKind::kSge:
      return std::make_unique<SgeFrontend>(scheduler);
  }
  throw common::ConfigError("unknown scheduler kind");
}

}  // namespace hoh::hpc
