#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/control_plane.h"
#include "common/json.h"
#include "common/thread_annotations.h"
#include "elastic/policy.h"
#include "pilot/estimator.h"
#include "pilot/pilot_manager.h"
#include "sim/engine.h"

/// \file elastic_controller.h
/// The elastic control loop: every sample interval the controller
/// snapshots one pilot's live state (capacity, backlog, drain status),
/// asks its policy for a decision, clamps it to the configured node
/// bounds, and actuates through PilotManager::grow_pilot /
/// shrink_pilot — so every grow pays real batch queue wait and every
/// shrink drains gracefully through the agent. While a resize is in
/// flight (grow job queued or drain running) new decisions are
/// deferred, which keeps the loop stable without policy cooperation.

namespace hoh::elastic {

struct ElasticControllerConfig {
  /// Control-plane mode (DESIGN.md §10). Sampling cadence is kept in both
  /// modes (resize decisions want a stable rhythm); kWatch additionally
  /// subscribes to the agent's capacity-change events (units arriving or
  /// finishing, nodes landing or leaving) and runs an extra deduplicated
  /// tick one event-turn later, so backlog spikes are acted on without
  /// waiting out the interval.
  common::ControlPlane control_plane = common::ControlPlane::kPoll;

  common::Seconds sample_interval = 30.0;
  /// Node floor. The base allocation can never shrink anyway; a higher
  /// floor keeps grown capacity around.
  int min_nodes = 1;
  /// Node ceiling; 0 = unlimited.
  int max_nodes = 0;
  /// Graceful-drain budget per shrink before executing units on leaving
  /// nodes are preempted and requeued.
  common::Seconds drain_timeout = 300.0;
};

/// Counters for the ablation study and the hohsim report.
struct ElasticCounters {
  std::size_t samples = 0;
  std::size_t grow_decisions = 0;
  std::size_t shrink_decisions = 0;
  std::size_t hold_decisions = 0;
  std::size_t deferred_decisions = 0;  // resize already in flight
  std::size_t clamped_decisions = 0;   // bounds reduced a resize to zero
  int nodes_requested = 0;  // grow nodes submitted to the batch system
  int nodes_added = 0;      // grow nodes that actually joined
  int nodes_removed = 0;    // nodes drained and released
  std::size_t clean_shrinks = 0;
  std::size_t forced_shrinks = 0;  // drain timed out, units preempted
  /// Grow decisions forced by failure-induced capacity loss (live nodes
  /// fell below the configured floor), bypassing the policy.
  std::size_t failure_grows = 0;
  /// Watch plane: ticks triggered by agent capacity events (on top of the
  /// periodic samples).
  std::size_t event_ticks = 0;

  common::Json to_json() const;
};

class ElasticController {
 public:
  /// \p estimator (optional) prices the queued backlog for
  /// PilotSample::predicted_backlog_seconds; without one, each unit's
  /// declared duration is used.
  ElasticController(pilot::PilotManager& manager,
                    std::shared_ptr<pilot::Pilot> pilot,
                    std::unique_ptr<ElasticPolicy> policy,
                    ElasticControllerConfig config = {},
                    std::shared_ptr<pilot::RuntimeEstimator> estimator =
                        nullptr);
  ~ElasticController();

  ElasticController(const ElasticController&) = delete;
  ElasticController& operator=(const ElasticController&) = delete;

  /// Starts the periodic sample/decide/actuate loop.
  void start();

  /// Stops the loop; in-flight resizes complete but trigger no new ones.
  void stop();

  /// Runs one sample/decide/actuate step immediately (tests drive this
  /// directly; the periodic loop calls it too).
  void tick();

  /// Snapshot of the counters (by value: the resize-completion callbacks
  /// mutate them, so handing out a reference would publish a data race to
  /// any observer polling from another thread).
  ElasticCounters counters() const HOH_EXCLUDES(mu_);
  const std::string& policy_name() const { return policy_->name(); }

  /// Snapshot of the sample the last tick decided on (all zeros before
  /// the first).
  PilotSample last_sample() const HOH_EXCLUDES(mu_);

 private:
  PilotSample collect_sample(pilot::Agent& agent) const;
  void actuate(const PilotSample& sample, ElasticDecision decision)
      HOH_EXCLUDES(mu_);

  /// Watch plane: one-time subscription to the agent's capacity events
  /// (lazy — the agent may not exist until the placeholder job starts).
  void maybe_subscribe(pilot::Agent& agent);
  /// Watch plane: schedule a deduplicated tick one event-turn from now.
  void request_event_tick();

  pilot::PilotManager& manager_;
  std::shared_ptr<pilot::Pilot> pilot_;
  std::unique_ptr<ElasticPolicy> policy_;
  ElasticControllerConfig config_;
  std::shared_ptr<pilot::RuntimeEstimator> estimator_;
  /// Guards the mutable observables below. Lock-ordering rule: never
  /// held across manager_ / policy_ / pilot_ calls — those may re-enter
  /// the controller through resize callbacks.
  mutable common::Mutex mu_;
  ElasticCounters counters_ HOH_GUARDED_BY(mu_);
  PilotSample last_sample_ HOH_GUARDED_BY(mu_);
  sim::EventHandle tick_event_;
  bool running_ = false;
  bool subscribed_ = false;          // capacity-event hook installed
  bool event_tick_pending_ = false;  // dedup for event-triggered ticks
  /// Outlives the controller in resize callbacks, so a late drain or
  /// grow completion on a destroyed controller is a no-op.
  std::shared_ptr<bool> alive_;
};

}  // namespace hoh::elastic
