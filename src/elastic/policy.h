#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "common/units.h"

/// \file policy.h
/// Elastic scaling policies. The paper's core argument (SS-III-B, SS-V)
/// is that pilot-based dynamic resource management lets Hadoop/Spark
/// clusters on HPC grow and shrink with the workload instead of holding a
/// static allocation. A policy looks at one PilotSample — the live state
/// an ElasticController collects every sample interval — and answers
/// grow / shrink / hold. Policies are deliberately pure decision
/// functions: all actuation (batch jobs, bootstrap, drain) lives in the
/// controller and the pilot layer.

namespace hoh::elastic {

/// Live snapshot of one pilot, collected by the controller.
struct PilotSample {
  common::Seconds time = 0.0;
  int nodes = 0;             // usable (non-draining) nodes
  int draining_nodes = 0;    // held but leaving
  int pending_grow_nodes = 0;  // requested, still in the batch queue
  int cores_per_node = 1;
  int total_cores = 0;       // across usable nodes
  int used_cores = 0;
  std::size_t queued_units = 0;   // agent backlog (not yet dispatched)
  int queued_cores = 0;           // cores those units ask for
  std::size_t running_units = 0;
  /// Core-seconds of predicted work in the backlog (estimator prediction
  /// x cores per unit, summed).
  double predicted_backlog_seconds = 0.0;

  int idle_cores() const { return std::max(0, total_cores - used_cores); }
  double utilization() const {
    return total_cores > 0
               ? static_cast<double>(used_cores) / total_cores
               : 0.0;
  }
};

enum class ElasticAction { kHold, kGrow, kShrink };

std::string to_string(ElasticAction action);

struct ElasticDecision {
  ElasticAction action = ElasticAction::kHold;
  int nodes = 0;       // node delta for grow/shrink, 0 for hold
  std::string reason;  // human-readable, lands in the trace
};

class ElasticPolicy {
 public:
  virtual ~ElasticPolicy() = default;
  virtual const std::string& name() const = 0;
  virtual ElasticDecision decide(const PilotSample& sample) = 0;
};

/// Backlog-driven: grow when the queue holds more core-demand than the
/// idle slots can absorb; shrink idle whole nodes (beyond a configured
/// spare) once the queue is empty.
struct BacklogPolicyConfig {
  /// Grow when queued cores exceed this many per idle core (or when no
  /// core is idle at all while units queue).
  double grow_queued_per_idle = 2.0;
  int grow_step_max = 4;    // nodes per decision
  int shrink_spare_nodes = 1;  // idle nodes to keep as headroom
};

class BacklogPolicy : public ElasticPolicy {
 public:
  explicit BacklogPolicy(BacklogPolicyConfig config = {})
      : config_(config) {}
  const std::string& name() const override { return name_; }
  ElasticDecision decide(const PilotSample& sample) override;

 private:
  BacklogPolicyConfig config_;
  std::string name_ = "backlog";
};

/// Utilization-driven with a hysteresis band and a cooldown, so
/// oscillating load inside the band never causes resize flapping.
struct UtilizationPolicyConfig {
  double high_watermark = 0.85;  // grow above this
  double low_watermark = 0.25;   // shrink below this (queue empty)
  common::Seconds cooldown = 120.0;  // min time between resizes
  int grow_step = 2;
  int shrink_step = 1;
};

class UtilizationPolicy : public ElasticPolicy {
 public:
  explicit UtilizationPolicy(UtilizationPolicyConfig config = {})
      : config_(config) {}
  const std::string& name() const override { return name_; }
  ElasticDecision decide(const PilotSample& sample) override;

 private:
  UtilizationPolicyConfig config_;
  std::string name_ = "utilization";
  common::Seconds last_resize_ = -1e18;
};

/// Deadline-driven: projects the backlog's completion from the
/// estimator's predicted core-seconds and grows when the projection
/// misses the deadline; sheds capacity once the queue is drained and
/// utilization is low.
struct DeadlinePolicyConfig {
  common::Seconds deadline = 0.0;  // absolute sim time; 0 = no deadline
  double safety = 1.2;             // inflate predicted work by this
  int grow_step_max = 4;
  double shrink_utilization = 0.2;  // shrink below this (queue empty)
};

class DeadlinePolicy : public ElasticPolicy {
 public:
  explicit DeadlinePolicy(DeadlinePolicyConfig config = {})
      : config_(config) {}
  const std::string& name() const override { return name_; }
  ElasticDecision decide(const PilotSample& sample) override;

 private:
  DeadlinePolicyConfig config_;
  std::string name_ = "deadline";
};

/// Named policy + numeric parameter overrides — the form experiment
/// plans (and the hohsim "elastic" section) configure policies in.
/// Unknown parameter keys throw ConfigError.
struct ElasticPolicySpec {
  std::string name = "backlog";  // backlog | utilization | deadline
  std::map<std::string, double> params;
};

std::unique_ptr<ElasticPolicy> make_policy(const ElasticPolicySpec& spec);

}  // namespace hoh::elastic
