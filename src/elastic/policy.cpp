#include "elastic/policy.h"

#include <cmath>

#include "common/error.h"

namespace hoh::elastic {

std::string to_string(ElasticAction action) {
  switch (action) {
    case ElasticAction::kHold:
      return "hold";
    case ElasticAction::kGrow:
      return "grow";
    case ElasticAction::kShrink:
      return "shrink";
  }
  return "?";
}

namespace {

int nodes_for_cores(int cores, int cores_per_node) {
  const int per = std::max(1, cores_per_node);
  return (std::max(1, cores) + per - 1) / per;
}

}  // namespace

ElasticDecision BacklogPolicy::decide(const PilotSample& sample) {
  if (sample.queued_cores > 0) {
    const int idle = sample.idle_cores();
    const bool starved =
        idle == 0 ||
        static_cast<double>(sample.queued_cores) / idle >
            config_.grow_queued_per_idle;
    if (!starved) return {ElasticAction::kHold, 0, "backlog within slots"};
    const int deficit = std::max(sample.queued_cores - idle, 1);
    const int step = std::min(config_.grow_step_max,
                              nodes_for_cores(deficit, sample.cores_per_node));
    return {ElasticAction::kGrow, step,
            "queued " + std::to_string(sample.queued_cores) +
                " cores vs " + std::to_string(idle) + " idle"};
  }
  // Queue empty: shed idle whole nodes beyond the spare headroom.
  const int idle_nodes = sample.idle_cores() / std::max(1, sample.cores_per_node);
  const int excess = idle_nodes - config_.shrink_spare_nodes;
  if (excess > 0) {
    return {ElasticAction::kShrink, excess,
            std::to_string(idle_nodes) + " idle nodes, queue empty"};
  }
  return {ElasticAction::kHold, 0, "no excess capacity"};
}

ElasticDecision UtilizationPolicy::decide(const PilotSample& sample) {
  if (sample.time - last_resize_ < config_.cooldown) {
    return {ElasticAction::kHold, 0, "cooldown"};
  }
  const double u = sample.utilization();
  const bool starved = sample.queued_units > 0 && sample.idle_cores() == 0;
  if (u > config_.high_watermark || starved) {
    last_resize_ = sample.time;
    return {ElasticAction::kGrow, config_.grow_step,
            "utilization " + std::to_string(u) + " above high watermark"};
  }
  if (u < config_.low_watermark && sample.queued_units == 0) {
    last_resize_ = sample.time;
    return {ElasticAction::kShrink, config_.shrink_step,
            "utilization " + std::to_string(u) + " below low watermark"};
  }
  return {ElasticAction::kHold, 0, "utilization in band"};
}

ElasticDecision DeadlinePolicy::decide(const PilotSample& sample) {
  const double work = sample.predicted_backlog_seconds * config_.safety;
  if (config_.deadline > 0.0 && sample.time < config_.deadline &&
      work > 0.0 && sample.total_cores > 0) {
    const double remaining = config_.deadline - sample.time;
    const double projected = work / sample.total_cores;
    if (projected > remaining) {
      // Cores needed to land the backlog exactly at the deadline.
      const int needed =
          static_cast<int>(std::ceil(work / remaining));
      const int deficit = needed - sample.total_cores;
      const int step =
          std::min(config_.grow_step_max,
                   nodes_for_cores(deficit, sample.cores_per_node));
      return {ElasticAction::kGrow, step,
              "projected finish overshoots deadline by " +
                  std::to_string(projected - remaining) + "s"};
    }
  }
  if (sample.queued_units == 0 &&
      sample.utilization() < config_.shrink_utilization) {
    return {ElasticAction::kShrink, 1, "deadline slack, queue empty"};
  }
  return {ElasticAction::kHold, 0, "on track"};
}

std::unique_ptr<ElasticPolicy> make_policy(const ElasticPolicySpec& spec) {
  auto require_known = [&spec](std::initializer_list<const char*> known) {
    for (const auto& [key, value] : spec.params) {
      (void)value;
      bool found = false;
      for (const char* k : known) {
        if (key == k) found = true;
      }
      if (!found) {
        throw common::ConfigError("elastic policy '" + spec.name +
                                  "': unknown parameter '" + key + "'");
      }
    }
  };
  auto get = [&spec](const char* key, double fallback) {
    auto it = spec.params.find(key);
    return it == spec.params.end() ? fallback : it->second;
  };

  if (spec.name == "backlog") {
    require_known({"grow_queued_per_idle", "grow_step_max",
                   "shrink_spare_nodes"});
    BacklogPolicyConfig config;
    config.grow_queued_per_idle =
        get("grow_queued_per_idle", config.grow_queued_per_idle);
    config.grow_step_max =
        static_cast<int>(get("grow_step_max", config.grow_step_max));
    config.shrink_spare_nodes =
        static_cast<int>(get("shrink_spare_nodes", config.shrink_spare_nodes));
    return std::make_unique<BacklogPolicy>(config);
  }
  if (spec.name == "utilization") {
    require_known({"high_watermark", "low_watermark", "cooldown",
                   "grow_step", "shrink_step"});
    UtilizationPolicyConfig config;
    config.high_watermark = get("high_watermark", config.high_watermark);
    config.low_watermark = get("low_watermark", config.low_watermark);
    config.cooldown = get("cooldown", config.cooldown);
    config.grow_step = static_cast<int>(get("grow_step", config.grow_step));
    config.shrink_step =
        static_cast<int>(get("shrink_step", config.shrink_step));
    return std::make_unique<UtilizationPolicy>(config);
  }
  if (spec.name == "deadline") {
    require_known({"deadline", "safety", "grow_step_max",
                   "shrink_utilization"});
    DeadlinePolicyConfig config;
    config.deadline = get("deadline", config.deadline);
    config.safety = get("safety", config.safety);
    config.grow_step_max =
        static_cast<int>(get("grow_step_max", config.grow_step_max));
    config.shrink_utilization =
        get("shrink_utilization", config.shrink_utilization);
    return std::make_unique<DeadlinePolicy>(config);
  }
  throw common::ConfigError("unknown elastic policy '" + spec.name +
                            "' (expected backlog|utilization|deadline)");
}

}  // namespace hoh::elastic
