#include "elastic/elastic_controller.h"

#include <algorithm>

#include "common/error.h"
#include "pilot/session.h"

namespace hoh::elastic {

common::Json ElasticCounters::to_json() const {
  common::JsonObject obj;
  obj["samples"] = static_cast<std::uint64_t>(samples);
  obj["growDecisions"] = static_cast<std::uint64_t>(grow_decisions);
  obj["shrinkDecisions"] = static_cast<std::uint64_t>(shrink_decisions);
  obj["holdDecisions"] = static_cast<std::uint64_t>(hold_decisions);
  obj["deferredDecisions"] = static_cast<std::uint64_t>(deferred_decisions);
  obj["clampedDecisions"] = static_cast<std::uint64_t>(clamped_decisions);
  obj["nodesRequested"] = nodes_requested;
  obj["nodesAdded"] = nodes_added;
  obj["nodesRemoved"] = nodes_removed;
  obj["cleanShrinks"] = static_cast<std::uint64_t>(clean_shrinks);
  obj["forcedShrinks"] = static_cast<std::uint64_t>(forced_shrinks);
  obj["failureGrows"] = static_cast<std::uint64_t>(failure_grows);
  obj["eventTicks"] = static_cast<std::uint64_t>(event_ticks);
  return common::Json(std::move(obj));
}

ElasticController::ElasticController(
    pilot::PilotManager& manager, std::shared_ptr<pilot::Pilot> pilot,
    std::unique_ptr<ElasticPolicy> policy, ElasticControllerConfig config,
    std::shared_ptr<pilot::RuntimeEstimator> estimator)
    : manager_(manager),
      pilot_(std::move(pilot)),
      policy_(std::move(policy)),
      config_(config),
      estimator_(std::move(estimator)),
      alive_(std::make_shared<bool>(true)) {
  if (pilot_ == nullptr) {
    throw common::ConfigError("ElasticController: null pilot");
  }
  if (policy_ == nullptr) {
    throw common::ConfigError("ElasticController: null policy");
  }
  if (config_.sample_interval <= 0.0) {
    throw common::ConfigError(
        "ElasticController: sample_interval must be positive");
  }
}

ElasticController::~ElasticController() {
  *alive_ = false;
  stop();
}

void ElasticController::start() {
  if (running_) return;
  running_ = true;
  if (pilot::Agent* agent = pilot_->agent();
      agent != nullptr && agent->active()) {
    maybe_subscribe(*agent);
  }
  // Sampling cadence is kept even on the watch plane: resize decisions
  // want a stable rhythm, and the periodic also covers quiescence
  // (allowlisted in tools/lint/check_concurrency.py).
  tick_event_ = manager_.session().engine().schedule_periodic(
      config_.sample_interval, [this] { tick(); });
}

void ElasticController::stop() {
  if (!running_) return;
  running_ = false;
  manager_.session().engine().cancel(tick_event_);
  tick_event_ = sim::EventHandle{};
}

void ElasticController::tick() {
  if (pilot::is_final(pilot_->state())) {
    stop();
    return;
  }
  pilot::Agent* agent = pilot_->agent();
  if (agent == nullptr || !agent->active()) return;  // still bootstrapping
  maybe_subscribe(*agent);

  const PilotSample sample = collect_sample(*agent);
  {
    common::MutexLock lock(mu_);
    counters_.samples += 1;
    last_sample_ = sample;
  }

  // One resize at a time: a grow job in the batch queue or a running
  // drain means the world is about to change — deciding on a stale
  // sample would double-provision or fight the drain.
  if (agent->draining() || pilot_->pending_grow_nodes() > 0) {
    common::MutexLock lock(mu_);
    counters_.deferred_decisions += 1;
    return;
  }

  // Failure-induced capacity loss trumps the policy: when node crashes
  // dragged the live set below the floor, grow back to it immediately —
  // a utilization-based policy would read a half-dead pilot as "idle".
  ElasticDecision decision;
  if (sample.nodes < config_.min_nodes) {
    decision.action = ElasticAction::kGrow;
    decision.nodes = config_.min_nodes - sample.nodes;
    decision.reason = "failure-induced-capacity-loss";
    common::MutexLock lock(mu_);
    counters_.failure_grows += 1;
  } else {
    decision = policy_->decide(sample);
  }
  sim::Trace& trace = manager_.session().trace();
  trace.record(manager_.session().engine().now(), "elastic", "decision",
               {{"pilot", pilot_->id()},
                {"policy", policy_->name()},
                {"action", to_string(decision.action)},
                {"nodes", std::to_string(decision.nodes)},
                {"reason", decision.reason},
                {"queued", std::to_string(sample.queued_units)},
                {"utilization", std::to_string(sample.utilization())}});
  actuate(sample, std::move(decision));
}

void ElasticController::maybe_subscribe(pilot::Agent& agent) {
  if (subscribed_ || config_.control_plane != common::ControlPlane::kWatch) {
    return;
  }
  subscribed_ = true;
  std::weak_ptr<bool> alive = alive_;
  agent.on_capacity_event([this, alive] {
    if (auto a = alive.lock(); a == nullptr || !*a) return;
    request_event_tick();
  });
}

void ElasticController::request_event_tick() {
  if (!running_ || event_tick_pending_) return;
  event_tick_pending_ = true;
  std::weak_ptr<bool> alive = alive_;
  manager_.session().engine().schedule(0.0, [this, alive] {
    if (auto a = alive.lock(); a == nullptr || !*a) return;
    event_tick_pending_ = false;
    if (!running_) return;
    {
      common::MutexLock lock(mu_);
      counters_.event_ticks += 1;
    }
    tick();
  });
}

PilotSample ElasticController::collect_sample(pilot::Agent& agent) const {
  PilotSample sample;
  sample.time = manager_.session().engine().now();
  const pilot::AgentCapacity capacity = agent.capacity();
  sample.nodes = capacity.nodes;
  sample.draining_nodes = capacity.draining_nodes;
  sample.pending_grow_nodes = pilot_->pending_grow_nodes();
  sample.total_cores = capacity.total_cores;
  sample.used_cores = capacity.used_cores;
  sample.running_units = agent.units_running();
  const auto& nodes = agent.allocation().nodes();
  sample.cores_per_node =
      nodes.empty() ? 1 : std::max(1, nodes.front()->spec().cores);

  for (const auto& desc : agent.queued_descriptions()) {
    sample.queued_units += 1;
    sample.queued_cores += std::max(1, desc.cores);
    const double predicted = estimator_ != nullptr
                                 ? estimator_->predict(desc)
                                 : desc.duration;
    sample.predicted_backlog_seconds += predicted * std::max(1, desc.cores);
  }
  return sample;
}

void ElasticController::actuate(const PilotSample& sample,
                                ElasticDecision decision) {
  const int live = pilot_->live_nodes();
  switch (decision.action) {
    case ElasticAction::kHold: {
      common::MutexLock lock(mu_);
      counters_.hold_decisions += 1;
      return;
    }
    case ElasticAction::kGrow: {
      int step = decision.nodes;
      if (config_.max_nodes > 0) {
        step = std::min(step, config_.max_nodes - live);
      }
      if (step <= 0) {
        common::MutexLock lock(mu_);
        counters_.clamped_decisions += 1;
        return;
      }
      {
        common::MutexLock lock(mu_);
        counters_.grow_decisions += 1;
        counters_.nodes_requested += step;
      }
      // mu_ is released before grow_pilot: the callback may fire inline
      // and takes mu_ itself — holding it here would self-deadlock.
      std::weak_ptr<bool> alive = alive_;
      manager_.grow_pilot(pilot_, step, [this, alive](int added) {
        if (auto a = alive.lock(); a == nullptr || !*a) return;
        common::MutexLock lock(mu_);
        counters_.nodes_added += added;
      });
      return;
    }
    case ElasticAction::kShrink: {
      // Only whole grow segments can leave, and never below the floor.
      int removable = 0;
      for (const auto& segment : pilot_->grow_segments()) {
        if (!segment.released) {
          removable += static_cast<int>(segment.node_names.size());
        }
      }
      int step = std::min({decision.nodes, removable,
                           live - std::max(1, config_.min_nodes)});
      if (step <= 0) {
        common::MutexLock lock(mu_);
        counters_.clamped_decisions += 1;
        return;
      }
      {
        common::MutexLock lock(mu_);
        counters_.shrink_decisions += 1;
      }
      std::weak_ptr<bool> alive = alive_;
      manager_.shrink_pilot(
          pilot_, step, config_.drain_timeout,
          [this, alive, before = live](bool clean) {
            if (auto a = alive.lock(); a == nullptr || !*a) return;
            const int removed = before - pilot_->live_nodes();
            common::MutexLock lock(mu_);
            counters_.nodes_removed += removed;
            if (clean) {
              counters_.clean_shrinks += 1;
            } else {
              counters_.forced_shrinks += 1;
            }
          });
      return;
    }
  }
  (void)sample;
}

ElasticCounters ElasticController::counters() const {
  common::MutexLock lock(mu_);
  return counters_;
}

PilotSample ElasticController::last_sample() const {
  common::MutexLock lock(mu_);
  return last_sample_;
}

}  // namespace hoh::elastic
