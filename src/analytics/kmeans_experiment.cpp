#include "analytics/kmeans_experiment.h"

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/error.h"
#include "common/statistics.h"
#include "common/string_util.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

namespace hoh::analytics {

namespace {

/// FNV-1a over the sorted, newline-joined names — stable across runs and
/// platforms, unlike std::hash.
std::string digest_names(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& name : names) {
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= static_cast<unsigned char>('\n');
    h *= 1099511628211ull;
  }
  return common::strformat("%016llx",
                           static_cast<unsigned long long>(h));
}

}  // namespace

KmeansExperimentResult run_kmeans_experiment(
    const KmeansExperimentConfig& config) {
  pilot::Session session;
  // Socket mode (plan "transport": "socket"): swap the message boundary
  // onto loopback TCP before any component registers an endpoint. The
  // synchronous-at-call-site contract keeps the simulation digest
  // byte-identical to in-process mode (DESIGN.md §14).
  if (config.transport == "socket") {
    session.set_transport(std::make_unique<net::SocketTransport>(config.net));
  }
  if (config.store_shards > 1) {
    session.store().set_shard_count(
        static_cast<std::size_t>(config.store_shards));
  }
  if (config.trace_rollup) session.trace().enable_rollup("unit");
  const int pool_nodes =
      config.elastic ? std::max(config.nodes, config.elastic_config.max_nodes)
                     : config.nodes;
  session.register_machine(config.machine, config.scheduler, pool_nodes);

  // Workload cost model for this cell.
  KmeansRunConfig run;
  run.machine = &session.saga().resource(config.machine.name).profile;
  run.nodes = config.nodes;
  run.tasks = config.tasks;
  run.yarn_stack = config.yarn_stack;
  run.op_cost = config.op_cost;
  run.shuffle_amplification = config.shuffle_amplification;
  const KmeansPhaseDurations durations =
      kmeans_phase_durations(config.scenario, run);

  // Agent configuration from the model + paper-era calibration.
  pilot::AgentConfig agent;
  agent.spawn_latency = config.spawn_latency;
  agent.yarn_submit_latency = config.yarn_submit_latency;
  agent.env_load_seconds = durations.env_load_per_task;
  agent.wrapper_setup_time = durations.wrapper_per_node;
  agent.wrapper_cached_time = 1.0;
  agent.reuse_yarn_app = config.reuse_yarn_app;
  agent.control_plane = config.control_plane;
  agent.yarn.yarn.control_plane = config.control_plane;
  agent.yarn.yarn.am_launch_time = 10.0;
  agent.yarn.yarn.container_launch_time = 4.0;

  pilot::PilotDescription pd;
  pd.resource = hpc::to_string(config.scheduler) + "://" +
                config.machine.name + "/";
  pd.nodes = config.nodes;
  pd.runtime = config.pilot_runtime;
  pd.backend = config.yarn_stack ? pilot::AgentBackend::kYarnModeI
                                 : pilot::AgentBackend::kPlain;

  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  um.set_control_plane(config.control_plane);

  // Multi-tenant front door (plan "tenants" section). Constructed only
  // when configured, so tenant-less plans run the exact pre-gateway
  // code path (digest parity by construction).
  std::unique_ptr<tenant::SubmissionGateway> gateway;
  if (config.tenants) {
    if (config.tenant_specs.empty()) {
      throw common::ConfigError("tenants enabled but tenant list is empty");
    }
    gateway = std::make_unique<tenant::SubmissionGateway>(
        um, config.gateway_config);
    for (const auto& spec : config.tenant_specs) gateway->add_tenant(spec);
  }

  // Fault injection against the batch pool: a crash kills whatever
  // placeholder job holds the node, exactly like a real HPC node loss.
  std::unique_ptr<sim::FailureInjector> injector;
  if (config.failures) {
    auto& entry = session.saga().resource(config.machine.name);
    hpc::BatchScheduler* sched = entry.scheduler.get();
    injector = std::make_unique<sim::FailureInjector>(
        session.engine(), config.failure_plan, sched->node_names());
    injector->set_trace(&session.trace());
    injector->on_crash(
        [sched](const std::string& n) { sched->fail_node(n); });
    injector->on_repair(
        [sched](const std::string& n) { sched->repair_node(n); });
    injector->on_slow([sched](const std::string& n, double factor) {
      if (auto* node = sched->node(n)) node->set_speed_factor(factor);
    });
    injector->arm();
  }

  auto pilot_handle = pm.submit_pilot(pd, agent);
  um.add_pilot(pilot_handle);

  if (config.recovery) {
    // Pilot resubmission: rebind the experiment to the replacement so
    // the elastic controller / metric loops follow it; the UnitManager
    // learns about it so parked units drain onto it.
    pm.enable_recovery(
        config.retry_policy,
        [&pilot_handle, &um](const std::shared_ptr<pilot::Pilot>& replacement,
                             const std::shared_ptr<pilot::Pilot>&) {
          pilot_handle = replacement;
          um.add_pilot(replacement);
        },
        config.failure_plan.seed);
    um.enable_recovery(config.retry_policy, config.failure_plan.seed + 1);
  }

  // Wait until the pilot is active. With recovery on, a pilot that dies
  // here may still be replaced (pilot_handle is rebound by the respawn
  // callback), so only a final state with recovery off ends the wait.
  const double kMaxSimTime = 14 * 24 * 3600.0;
  while (pilot_handle->state() != pilot::PilotState::kActive &&
         (config.recovery || !pilot::is_final(pilot_handle->state())) &&
         session.engine().now() < kMaxSimTime) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  KmeansExperimentResult result;
  if (pilot_handle->state() != pilot::PilotState::kActive) {
    result.engine_events = session.engine().executed();
    return result;
  }

  std::unique_ptr<elastic::ElasticController> controller;
  if (config.elastic) {
    elastic::ElasticControllerConfig elastic_config = config.elastic_config;
    elastic_config.control_plane = config.control_plane;
    controller = std::make_unique<elastic::ElasticController>(
        pm, pilot_handle, elastic::make_policy(config.elastic_policy),
        elastic_config, um.estimator_ptr());
    controller->start();
  }
  result.peak_nodes = pilot_handle->live_nodes();

  // YARN-path units use 1 GiB containers (+1 GiB AM each) so a full
  // 32-task wave fits the 3-node cluster without a second wave; the
  // *memory pressure* of the real JVM footprint is modelled in the cost
  // model, not the container ask (matching how the paper's runs were
  // configured vs. what the nodes actually experienced).
  const common::MemoryMb memory =
      config.unit_memory_mb > 0 ? config.unit_memory_mb
                                : (config.yarn_stack ? 1024 : 2048);

  std::vector<std::string> completed_names;
  auto run_phase = [&](const std::string& name, double duration) {
    std::vector<pilot::ComputeUnitDescription> cuds;
    cuds.reserve(static_cast<std::size_t>(config.tasks));
    for (int t = 0; t < config.tasks; ++t) {
      pilot::ComputeUnitDescription cud;
      cud.name = name + "-" + std::to_string(t);
      cud.executable = "python";
      cud.arguments = {"kmeans.py", "--phase", name};
      cud.cores = 1;
      cud.memory_mb = memory;
      cud.duration = duration;
      cuds.push_back(std::move(cud));
    }
    if (gateway != nullptr) {
      // Tenant path: units enter through admission control, assigned to
      // the listed tenants round-robin. The barrier additionally waits
      // for the gateway to drain (queued units are invisible to
      // um.all_done() until dispatched).
      for (std::size_t i = 0; i < cuds.size(); ++i) {
        const auto& spec = config.tenant_specs[i % config.tenant_specs.size()];
        gateway->submit(spec.id, cuds[i]);
      }
      while (!(um.all_done() && gateway->quiescent()) &&
             session.engine().now() < kMaxSimTime) {
        session.engine().run_until(session.engine().now() + 5.0);
        result.peak_nodes =
            std::max(result.peak_nodes, pilot_handle->live_nodes());
      }
      return;  // completed names are collected from the gateway at the end
    }
    auto units = um.submit(cuds);
    // Barrier: the paper's benchmark synchronizes between phases. With
    // recovery, all_done() holds the barrier while requeues are in
    // flight, so a mid-phase pilot loss stalls — not ends — the phase.
    while (!um.all_done() && session.engine().now() < kMaxSimTime) {
      session.engine().run_until(session.engine().now() + 5.0);
      result.peak_nodes =
          std::max(result.peak_nodes, pilot_handle->live_nodes());
    }
    for (const auto& unit : units) {
      if (unit->state() == pilot::UnitState::kDone) {
        completed_names.push_back(unit->description().name);
      }
    }
  };

  for (int iter = 0; iter < config.scenario.iterations; ++iter) {
    run_phase(common::strformat("map-%d", iter),
              durations.map_task_seconds);
    // A dead pilot with no replacement fails the job: stop submitting.
    if (pilot::is_final(pilot_handle->state())) break;
    run_phase(common::strformat("reduce-%d", iter),
              durations.reduce_task_seconds);
    if (pilot::is_final(pilot_handle->state())) break;
  }

  if (controller != nullptr) {
    result.elastic_counters = controller->counters();
    controller->stop();
  }
  if (injector != nullptr) {
    result.failure_counters = injector->counters();
    injector->disarm();
  }
  result.pilots_resubmitted = pm.pilots_resubmitted();
  result.units_requeued = um.units_requeued();
  result.units_abandoned = um.units_abandoned();
  if (gateway != nullptr) {
    completed_names = gateway->completed_unit_names();
    result.units_preempted = gateway->units_preempted();
    result.tenant_accounting =
        gateway->accounting().to_json(/*include_journal=*/false);
    if (!config.accounting_journal.empty()) {
      gateway->accounting().write_json(config.accounting_journal);
    }
  }
  result.output_checksum = digest_names(std::move(completed_names));
  result.engine_events = session.engine().executed();

  // --- metrics from the trace ---
  const auto agent_started =
      session.trace().first("pilot", "agent_started");
  const auto last_done = session.trace().last("unit", "Done");
  if (!agent_started.has_value() || !last_done.has_value() ||
      !um.all_done()) {
    return result;
  }
  result.time_to_completion = last_done->time - agent_started->time;

  for (const auto& s : session.trace().find_spans("pilot", "agent_startup")) {
    if (s.key == pilot_handle->id()) result.agent_startup = s.duration();
  }
  common::RunningStats startup;
  for (const auto& s : session.trace().find_spans("unit", "startup")) {
    startup.add(s.duration());
  }
  result.mean_unit_startup =
      config.trace_rollup
          ? session.trace().span_stats("unit", "startup").mean()
          : startup.mean();
  result.units_completed = um.done_count();
  result.ok = result.units_completed ==
              static_cast<std::size_t>(config.tasks) * 2 *
                  static_cast<std::size_t>(config.scenario.iterations);
  return result;
}

}  // namespace hoh::analytics
