#include "analytics/kmeans_cost.h"

#include "common/error.h"

namespace hoh::analytics {

KmeansScenario scenario_10k_points() {
  return {"10k points / 5k clusters", 10'000, 5'000, 3, 2};
}

KmeansScenario scenario_100k_points() {
  return {"100k points / 500 clusters", 100'000, 500, 3, 2};
}

KmeansScenario scenario_1m_points() {
  return {"1M points / 50 clusters", 1'000'000, 50, 3, 2};
}

std::vector<KmeansScenario> paper_scenarios() {
  return {scenario_10k_points(), scenario_100k_points(),
          scenario_1m_points()};
}

KmeansPhaseDurations kmeans_phase_durations(const KmeansScenario& scenario,
                                            const KmeansRunConfig& config) {
  if (config.machine == nullptr) {
    throw common::ConfigError("KmeansRunConfig.machine must be set");
  }
  const auto backend = config.yarn_stack
                           ? cluster::StorageBackend::kLocalDisk
                           : cluster::StorageBackend::kSharedFs;

  mapreduce::PhaseEnv env;
  env.machine = config.machine;
  env.nodes = config.nodes;
  env.tasks = config.tasks;
  env.io_backend = backend;
  env.op_cost = config.op_cost;
  env.env_cached_per_node = config.yarn_stack;
  env.memory_per_task_mb = config.memory_per_task_mb > 0
                               ? config.memory_per_task_mb
                               : (config.yarn_stack ? 2560 : 2048);

  const auto points = scenario.points;

  // --- map phase: read split, assign points ---
  mapreduce::PhaseSpec map_spec;
  map_spec.compute_ops = static_cast<double>(points) *
                         static_cast<double>(scenario.clusters) *
                         scenario.dim;
  map_spec.input_bytes = points * kPointRecordBytes;

  // --- reduce phase: average, write centroids ---
  mapreduce::PhaseSpec reduce_spec;
  reduce_spec.compute_ops =
      static_cast<double>(points) * scenario.dim;  // summation pass
  reduce_spec.output_bytes = scenario.clusters * kPointRecordBytes;

  KmeansPhaseDurations out;

  // The launch paths account for environment loading, so the phase costs
  // here exclude it (env_bytes/ops zeroed) ...
  mapreduce::PhaseEnv task_env = env;
  task_env.env_bytes = 0;
  task_env.env_file_ops = 0;
  out.map_cost = mapreduce::estimate_phase(map_spec, task_env);
  out.reduce_cost = mapreduce::estimate_phase(reduce_spec, task_env);

  // --- shuffle: M x R small spill files moved through the backend's
  // small-file channel (write in the map phase, read in the reduce
  // phase). On the shared filesystem the channel is a machine-wide cap
  // that our task count barely moves — so shuffle wall time stays flat
  // while compute shrinks with tasks, which is exactly the speedup
  // decline the paper reports on Stampede.
  const double volume = static_cast<double>(points) * kEmitRecordBytes *
                        config.shuffle_amplification;
  const auto& m = *config.machine;
  double per_direction = 0.0;
  if (config.yarn_stack) {
    const double disks = static_cast<double>(config.nodes);
    per_direction = volume / (disks * m.local_disk.small_file_bandwidth) +
                    config.tasks * m.local_disk.op_latency;
    // Remote partitions cross the interconnect (cheap next to disk).
    const double remote_fraction =
        config.nodes > 1 ? 1.0 - 1.0 / config.nodes : 0.0;
    per_direction += m.network.transfer_time(
        static_cast<common::Bytes>(volume * remote_fraction / config.tasks),
        config.tasks);
  } else {
    per_direction =
        volume / m.shared_fs.small_file_aggregate_bandwidth +
        config.tasks * m.shared_fs.metadata_latency;
  }
  out.map_cost.shuffle = per_direction;
  out.reduce_cost.shuffle = per_direction;

  out.map_task_seconds = out.map_cost.total();
  out.reduce_task_seconds = out.reduce_cost.total();

  // ... and are exported separately for the agent configuration.
  mapreduce::PhaseSpec env_only;
  mapreduce::PhaseEnv env_env = env;  // default env bytes/ops
  const auto env_cost = mapreduce::estimate_phase(env_only, env_env);
  if (config.yarn_stack) {
    out.wrapper_per_node = env_cost.env_load;
    out.env_load_per_task = 0.0;
  } else {
    out.env_load_per_task = env_cost.env_load;
    out.wrapper_per_node = 0.0;
  }
  return out;
}

}  // namespace hoh::analytics
