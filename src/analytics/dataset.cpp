#include "analytics/dataset.h"

namespace hoh::analytics {

std::vector<Point3> gaussian_blobs(std::size_t n, std::size_t k,
                                   std::uint64_t seed, double range,
                                   double stddev,
                                   std::vector<Point3>* true_centers) {
  common::Rng rng(seed);
  std::vector<Point3> centers;
  centers.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    centers.push_back({rng.uniform(-range, range), rng.uniform(-range, range),
                       rng.uniform(-range, range)});
  }
  std::vector<Point3> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point3& c = centers[i % k];
    points.push_back({rng.normal(c[0], stddev), rng.normal(c[1], stddev),
                      rng.normal(c[2], stddev)});
  }
  if (true_centers != nullptr) *true_centers = std::move(centers);
  return points;
}

std::vector<Point3> uniform_points(std::size_t n, std::uint64_t seed,
                                   double range) {
  common::Rng rng(seed);
  std::vector<Point3> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-range, range), rng.uniform(-range, range),
                      rng.uniform(-range, range)});
  }
  return points;
}

}  // namespace hoh::analytics
