#include "analytics/dataset.h"

namespace hoh::analytics {

Point3 operator+(const Point3& a, const Point3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}

Point3 operator-(const Point3& a, const Point3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

Point3 operator*(const Point3& a, double s) {
  return {a[0] * s, a[1] * s, a[2] * s};
}

double distance2(const Point3& a, const Point3& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  const double dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

std::vector<Point3> gaussian_blobs(std::size_t n, std::size_t k,
                                   std::uint64_t seed, double range,
                                   double stddev,
                                   std::vector<Point3>* true_centers) {
  common::Rng rng(seed);
  std::vector<Point3> centers;
  centers.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    centers.push_back({rng.uniform(-range, range), rng.uniform(-range, range),
                       rng.uniform(-range, range)});
  }
  std::vector<Point3> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Point3& c = centers[i % k];
    points.push_back({rng.normal(c[0], stddev), rng.normal(c[1], stddev),
                      rng.normal(c[2], stddev)});
  }
  if (true_centers != nullptr) *true_centers = std::move(centers);
  return points;
}

std::vector<Point3> uniform_points(std::size_t n, std::uint64_t seed,
                                   double range) {
  common::Rng rng(seed);
  std::vector<Point3> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-range, range), rng.uniform(-range, range),
                      rng.uniform(-range, range)});
  }
  return points;
}

}  // namespace hoh::analytics
