#pragma once

#include <string>
#include <vector>

#include "analytics/dataset.h"
#include "mapreduce/sim_cost.h"

/// \file kmeans_cost.h
/// Cost model for the paper's K-Means benchmark (Fig. 6): per-iteration
/// map/reduce phase times for a (machine, nodes, tasks, stack)
/// configuration. The Fig. 6 bench uses these as Compute-Unit durations
/// when driving the real pilot middleware; the launch-path overheads
/// (environment loading, YARN wrapper, bootstrap) come from the
/// middleware itself, not from this model.

namespace hoh::analytics {

/// One of the paper's three scenarios. points x clusters is constant
/// (5e7), so compute is constant while shuffle volume grows with points.
struct KmeansScenario {
  std::string label;
  std::int64_t points = 0;
  std::int64_t clusters = 0;
  int dim = 3;
  int iterations = 2;  // "we run 2 iterations of K-Means"
};

KmeansScenario scenario_10k_points();    // 10,000 pts / 5,000 clusters
KmeansScenario scenario_100k_points();   // 100,000 pts / 500 clusters
KmeansScenario scenario_1m_points();     // 1,000,000 pts / 50 clusters
std::vector<KmeansScenario> paper_scenarios();

/// Execution stack + placement for one Fig. 6 cell.
struct KmeansRunConfig {
  const cluster::MachineProfile* machine = nullptr;
  int nodes = 1;
  int tasks = 8;

  /// true = RP-YARN: data on node-local disks (HDFS), environment
  /// localized per node. false = plain RP: everything through the shared
  /// parallel filesystem, environment loaded per task.
  bool yarn_stack = false;

  /// Seconds of compute per (point x cluster x dim) unit on a
  /// compute_rate-1.0 core. Calibrated so the 8-task Stampede runs land
  /// in the paper's hundreds-to-~2000 s range (interpreted-language task
  /// code).
  double op_cost = 4.0e-5;

  /// Memory per task: YARN containers carry JVM overhead on top of the
  /// task heap.
  common::MemoryMb memory_per_task_mb = 0;  // 0 = stack default

  /// Write amplification of the shuffle path (spill + merge + text
  /// re-encoding): effective shuffle volume is
  /// points x kEmitRecordBytes x amplification, moved twice (write+read)
  /// through the backend's *small-file* channel.
  double shuffle_amplification = 4.0;
};

/// Per-iteration durations for one configuration.
struct KmeansPhaseDurations {
  mapreduce::PhaseCost map_cost;
  mapreduce::PhaseCost reduce_cost;

  /// Duration of one map / reduce Compute-Unit (tasks run concurrently,
  /// so per-task time equals phase time).
  double map_task_seconds = 0.0;
  double reduce_task_seconds = 0.0;

  /// Launch-path parameters for the agent config: per-task environment
  /// load on the plain path, per-node localization on the YARN path.
  double env_load_per_task = 0.0;
  double wrapper_per_node = 0.0;

  double iteration_seconds() const {
    return map_task_seconds + reduce_task_seconds;
  }
};

KmeansPhaseDurations kmeans_phase_durations(const KmeansScenario& scenario,
                                            const KmeansRunConfig& config);

}  // namespace hoh::analytics
