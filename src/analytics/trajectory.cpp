#include "analytics/trajectory.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/random.h"

namespace hoh::analytics {

Trajectory generate_trajectory(std::size_t atoms, std::size_t frames,
                               std::uint64_t seed, double step) {
  if (atoms == 0 || frames == 0) {
    throw common::ConfigError("trajectory needs atoms >= 1 and frames >= 1");
  }
  common::Rng rng(seed);
  Trajectory traj;
  traj.atoms = atoms;
  traj.frames.reserve(frames);

  // Initial structure: atoms in a dense ball of radius ~ atoms^(1/3).
  const double radius = std::cbrt(static_cast<double>(atoms));
  std::vector<Point3> current;
  current.reserve(atoms);
  for (std::size_t a = 0; a < atoms; ++a) {
    current.push_back({rng.normal(0.0, radius), rng.normal(0.0, radius),
                       rng.normal(0.0, radius)});
  }
  traj.frames.push_back(current);
  for (std::size_t f = 1; f < frames; ++f) {
    for (auto& p : current) {
      p[0] += rng.normal(0.0, step);
      p[1] += rng.normal(0.0, step);
      p[2] += rng.normal(0.0, step);
    }
    traj.frames.push_back(current);
  }
  return traj;
}

common::Bytes trajectory_bytes(std::size_t atoms, std::size_t frames) {
  // 3 x float32 per atom per frame + ~100 B frame header (DCD-like).
  return static_cast<common::Bytes>(frames) *
         (static_cast<common::Bytes>(atoms) * 12 + 100);
}

Point3 center_of_mass(const std::vector<Point3>& frame) {
  Point3 com{0.0, 0.0, 0.0};
  for (const auto& p : frame) com = com + p;
  return com * (1.0 / static_cast<double>(frame.size()));
}

double radius_of_gyration(const std::vector<Point3>& frame) {
  const Point3 com = center_of_mass(frame);
  double sum = 0.0;
  for (const auto& p : frame) sum += distance2(p, com);
  return std::sqrt(sum / static_cast<double>(frame.size()));
}

double rmsd(const std::vector<Point3>& a, const std::vector<Point3>& b) {
  if (a.size() != b.size()) {
    throw common::ConfigError("rmsd: frames differ in atom count");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += distance2(a[i], b[i]);
  return std::sqrt(sum / static_cast<double>(a.size()));
}

std::vector<double> rg_series(common::ThreadPool& pool,
                              const Trajectory& trajectory) {
  std::vector<double> out(trajectory.frame_count());
  pool.parallel_for(out.size(), [&](std::size_t f) {
    out[f] = radius_of_gyration(trajectory.frames[f]);
  });
  return out;
}

std::vector<double> rmsd_series(common::ThreadPool& pool,
                                const Trajectory& trajectory) {
  std::vector<double> out(trajectory.frame_count());
  const auto& reference = trajectory.frames.front();
  pool.parallel_for(out.size(), [&](std::size_t f) {
    out[f] = rmsd(trajectory.frames[f], reference);
  });
  return out;
}

namespace {

/// One Jacobi rotation zeroing element (p, q) of a symmetric 3x3.
void jacobi_rotate(std::array<std::array<double, 3>, 3>& m, int p, int q) {
  if (std::abs(m[p][q]) < 1e-15) return;
  const double theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
  const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
  const double c = 1.0 / std::sqrt(t * t + 1.0);
  const double s = t * c;
  std::array<std::array<double, 3>, 3> r = m;
  for (int i = 0; i < 3; ++i) {
    r[p][i] = c * m[p][i] - s * m[q][i];
    r[q][i] = s * m[p][i] + c * m[q][i];
  }
  std::array<std::array<double, 3>, 3> out = r;
  for (int i = 0; i < 3; ++i) {
    out[i][p] = c * r[i][p] - s * r[i][q];
    out[i][q] = s * r[i][p] + c * r[i][q];
  }
  m = out;
}

}  // namespace

std::array<double, 3> com_pca_eigenvalues(const Trajectory& trajectory) {
  // Covariance of the COM trace.
  std::vector<Point3> coms;
  coms.reserve(trajectory.frame_count());
  for (const auto& f : trajectory.frames) coms.push_back(center_of_mass(f));
  Point3 mean{0.0, 0.0, 0.0};
  for (const auto& c : coms) mean = mean + c;
  mean = mean * (1.0 / static_cast<double>(coms.size()));

  std::array<std::array<double, 3>, 3> cov{};
  for (const auto& c : coms) {
    const Point3 d = c - mean;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        cov[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] +=
            d[static_cast<std::size_t>(i)] * d[static_cast<std::size_t>(j)];
      }
    }
  }
  const double n = static_cast<double>(coms.size());
  for (auto& row : cov) {
    for (auto& v : row) v /= n;
  }

  // Jacobi sweeps (3x3 symmetric converges in a few).
  for (int sweep = 0; sweep < 16; ++sweep) {
    jacobi_rotate(cov, 0, 1);
    jacobi_rotate(cov, 0, 2);
    jacobi_rotate(cov, 1, 2);
  }
  std::array<double, 3> eig{cov[0][0], cov[1][1], cov[2][2]};
  std::sort(eig.begin(), eig.end(), std::greater<>());
  return eig;
}

}  // namespace hoh::analytics
