#pragma once

#include <vector>

#include "analytics/kmeans_experiment.h"
#include "common/json.h"

/// \file experiment_config.h
/// JSON (de)serialization for K-Means experiment plans, so experiments
/// can be described in files and driven by the `hohsim` CLI:
///
/// {
///   "experiments": [
///     {"machine": "stampede", "nodes": 3, "tasks": 32,
///      "stack": "rp-yarn", "scenario": "1m"},
///     {"machine": "wrangler", "nodes": 1, "tasks": 8,
///      "stack": "rp", "scenario": {"points": 250000, "clusters": 200}}
///   ]
/// }

namespace hoh::analytics {

/// Parses one experiment object. Recognized fields: machine
/// ("stampede" | "wrangler" | "generic"), nodes, tasks, stack ("rp" |
/// "rp-yarn"), scenario ("10k" | "100k" | "1m" or an object with points/
/// clusters and optional iterations), op_cost, shuffle_amplification,
/// reuse_yarn_app, and an optional "elastic" object {policy, params,
/// sample_interval, min_nodes, max_nodes, drain_timeout} that enables an
/// ElasticController over the cell (min/max default to nodes; max_nodes
/// below nodes throws). An optional "failures" object {seed,
/// mean_time_to_crash, mean_time_to_repair, mean_time_to_slow,
/// slow_factor, slow_duration, max_crashes, start_after} arms a
/// FailureInjector over the batch pool, and an optional "recovery"
/// object {max_attempts, base_backoff, multiplier, max_backoff, jitter}
/// enables pilot resubmission + unit requeue under that retry policy.
/// Scale knobs (DESIGN.md §13): "store_shards" (state-store shard
/// count, >= 1), "spawn_latency" (agent task-spawner latency override),
/// "trace_rollup" (fold per-unit trace events into counters),
/// "pilot_runtime" (pilot walltime request in simulated seconds).
/// Missing fields keep defaults; unknown machine/stack/scenario/policy
/// values throw ConfigError.
KmeansExperimentConfig kmeans_config_from_json(const common::Json& doc);

/// Strict plan parsing (hohsim --strict): unknown plan keys become
/// ConfigError instead of warnings, so CI catches a typo ("tenant" for
/// "tenants") as a failed run rather than a silently ignored section.
/// Process-wide; default off.
void set_strict_plan_parsing(bool strict);
bool strict_plan_parsing();

/// Parses {"experiments": [...]} into a plan.
std::vector<KmeansExperimentConfig> experiment_plan_from_json(
    const common::Json& doc);

/// Serializes a finished cell for machine-readable output.
common::Json result_to_json(const KmeansExperimentConfig& config,
                            const KmeansExperimentResult& result);

}  // namespace hoh::analytics
