#pragma once

#include <vector>

#include "analytics/dataset.h"
#include "common/thread_pool.h"
#include "spark/rdd.h"

/// \file kmeans.h
/// Four real implementations of Lloyd's K-Means over 3-D points:
/// serial, thread-parallel, MapReduce-formulated (through the real MR
/// engine) and RDD-formulated (through the mini-Spark engine). All four
/// produce identical centroids for the same input and initialization, so
/// the parallel formulations are verified against the serial one.

namespace hoh::analytics {

struct KMeansResult {
  std::vector<Point3> centroids;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
  int iterations = 0;
};

/// Deterministic initialization: k points evenly strided through the
/// input (the formulation every backend shares).
std::vector<Point3> kmeans_init(const std::vector<Point3>& points,
                                std::size_t k);

/// Index of the centroid nearest to \p p (ties: lowest index).
std::size_t nearest_centroid(const Point3& p,
                             const std::vector<Point3>& centroids);

/// Classic serial Lloyd iterations.
KMeansResult kmeans_serial(const std::vector<Point3>& points, std::size_t k,
                           int iterations);

/// Thread-parallel assignment + reduction over a pool.
KMeansResult kmeans_threaded(common::ThreadPool& pool,
                             const std::vector<Point3>& points,
                             std::size_t k, int iterations);

/// MapReduce formulation: map = assign point to centroid and emit
/// (cluster, (point, 1)); reduce = average. One MR job per iteration —
/// exactly the structure the paper's benchmark runs per iteration.
KMeansResult kmeans_mapreduce(common::ThreadPool& pool,
                              const std::vector<Point3>& points,
                              std::size_t k, int iterations,
                              std::size_t map_tasks = 0,
                              std::size_t reduce_tasks = 0);

/// RDD formulation: map + reduceByKey per iteration on a cached input
/// RDD (the Spark variant of the same benchmark).
KMeansResult kmeans_rdd(spark::SparkEnv& env,
                        const std::vector<Point3>& points, std::size_t k,
                        int iterations, std::size_t partitions = 0);

}  // namespace hoh::analytics
