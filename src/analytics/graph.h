#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "spark/rdd.h"

/// \file graph.h
/// Graph analytics workloads from the paper's motivating domains
/// ("epidemiology models [12]" — Arifuzzaman et al.'s triangle counting —
/// and "graph-based algorithms [9]"): a synthetic contact-network
/// generator, exact triangle counting (node-iterator, thread-parallel),
/// and PageRank in two real implementations (threaded and RDD
/// join-based).
///
/// Thread-safety: the parallel kernels share only read-only graph data
/// across pool workers plus per-worker accumulators combined with
/// std::atomic (triangle count) or disjoint index ranges (PageRank), so
/// they need no mutex.

namespace hoh::analytics {

/// Undirected simple graph in adjacency-list form; neighbor lists are
/// sorted and deduplicated.
struct Graph {
  std::vector<std::vector<std::uint32_t>> adjacency;

  std::size_t vertex_count() const { return adjacency.size(); }
  std::size_t edge_count() const;
};

/// Structure-of-arrays (CSR) view of a Graph: all neighbor lists
/// concatenated into one flat array with per-vertex offsets. The
/// parallel kernels build this once per call and walk contiguous
/// slices, so the inner loops stream cache lines instead of chasing a
/// pointer per vertex through vector-of-vectors storage.
struct CsrAdjacency {
  std::vector<std::uint32_t> offsets;  // size vertex_count()+1
  std::vector<std::uint32_t> targets;  // size 2*edge_count(), sorted per row

  static CsrAdjacency build(const Graph& graph);

  std::size_t vertex_count() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::uint32_t degree(std::size_t v) const {
    return offsets[v + 1] - offsets[v];
  }
  const std::uint32_t* begin(std::size_t v) const {
    return targets.data() + offsets[v];
  }
  const std::uint32_t* end(std::size_t v) const {
    return targets.data() + offsets[v + 1];
  }
};

/// Builds a graph from an edge list (self-loops and duplicates dropped).
Graph graph_from_edges(
    std::size_t vertices,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

/// Complete graph K_n (ground truth: C(n,3) triangles).
Graph complete_graph(std::size_t n);

/// Preferential-attachment contact network: each new vertex attaches to
/// \p attach existing vertices chosen proportionally to degree
/// (Barabási–Albert flavour). Deterministic for a fixed seed.
Graph preferential_attachment_graph(std::size_t vertices, int attach,
                                    std::uint64_t seed);

/// Erdős–Rényi G(n, p). Deterministic for a fixed seed.
Graph random_graph(std::size_t vertices, double edge_probability,
                   std::uint64_t seed);

/// Exact triangle count via the node-iterator algorithm, parallel over
/// vertices. Each triangle counted once.
std::uint64_t count_triangles(common::ThreadPool& pool, const Graph& graph);

/// Global clustering coefficient: 3 x triangles / open+closed wedges
/// (0 when the graph has no wedge).
double clustering_coefficient(common::ThreadPool& pool, const Graph& graph);

/// PageRank with damping \p d, uniform teleport, \p iterations rounds.
/// Dangling mass is redistributed uniformly. Returns one score per
/// vertex (sums to ~1).
std::vector<double> pagerank(common::ThreadPool& pool, const Graph& graph,
                             int iterations = 20, double damping = 0.85);

/// The same PageRank expressed on the mini-RDD engine: contributions are
/// a flat_map over (vertex, rank) joined against the adjacency RDD and
/// reduced by key — the canonical Spark formulation.
std::vector<double> pagerank_rdd(spark::SparkEnv& env, const Graph& graph,
                                 int iterations = 20, double damping = 0.85);

}  // namespace hoh::analytics
