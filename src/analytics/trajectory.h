#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analytics/dataset.h"
#include "common/thread_pool.h"
#include "common/units.h"

/// \file trajectory.h
/// Synthetic molecular-dynamics trajectory data and the analysis kernels
/// the paper motivates ("trajectory data that is time-ordered set of
/// coordinates", analysis "from computing the higher order moments, to
/// principal components"). Substitutes for real MD output (unavailable
/// here) while exercising the same compute/data shape: frames x atoms of
/// 3-D coordinates, reduced per frame and across frames.

namespace hoh::analytics {

/// A trajectory: frames[f][a] is atom a's position in frame f.
struct Trajectory {
  std::size_t atoms = 0;
  std::vector<std::vector<Point3>> frames;

  std::size_t frame_count() const { return frames.size(); }
};

/// Generates a random-walk trajectory around a compact initial
/// structure. Deterministic for a fixed seed.
Trajectory generate_trajectory(std::size_t atoms, std::size_t frames,
                               std::uint64_t seed, double step = 0.05);

/// Serialized size of a trajectory in a binary DCD-like format.
common::Bytes trajectory_bytes(std::size_t atoms, std::size_t frames);

/// Center of mass of one frame (unit masses).
Point3 center_of_mass(const std::vector<Point3>& frame);

/// Radius of gyration of one frame.
double radius_of_gyration(const std::vector<Point3>& frame);

/// Root-mean-square deviation between two frames (no alignment).
double rmsd(const std::vector<Point3>& a, const std::vector<Point3>& b);

/// Per-frame radius-of-gyration series, computed frame-parallel.
std::vector<double> rg_series(common::ThreadPool& pool,
                              const Trajectory& trajectory);

/// Per-frame RMSD against frame 0, computed frame-parallel.
std::vector<double> rmsd_series(common::ThreadPool& pool,
                                const Trajectory& trajectory);

/// Eigenvalues (descending) of the 3x3 covariance of the center-of-mass
/// trace — the "principal component based analysis" of the trajectory's
/// global motion. Uses a closed-loop Jacobi sweep on the symmetric 3x3.
std::array<double, 3> com_pca_eigenvalues(const Trajectory& trajectory);

}  // namespace hoh::analytics
