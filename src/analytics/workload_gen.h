#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pilot/descriptions.h"

/// \file workload_gen.h
/// Synthetic Compute-Unit workload generators for throughput and
/// scheduling studies. Distributions reflect the workload classes the
/// paper's SS-II contrasts: fine-grained data-parallel tasks vs
/// long-running HPC jobs, plus heavy-tailed mixes where stragglers
/// dominate.

namespace hoh::analytics {

enum class DurationDistribution {
  kConstant,   // every unit the same
  kUniform,    // [0.5, 1.5] x mean
  kBimodal,    // 90% short (0.25 x mean), 10% long (7.75 x mean)
  kHeavyTail,  // log-normal with sigma 1.0 (median chosen to hit mean)
};

std::string to_string(DurationDistribution dist);

struct WorkloadSpec {
  int units = 32;
  DurationDistribution distribution = DurationDistribution::kConstant;
  double mean_seconds = 60.0;
  int cores = 1;
  common::MemoryMb memory_mb = 2048;
  std::string executable = "task";
  std::uint64_t seed = 42;
};

/// Generates the unit descriptions. Deterministic for a fixed seed; the
/// realized mean converges to mean_seconds for large unit counts.
std::vector<pilot::ComputeUnitDescription> generate_workload(
    const WorkloadSpec& spec);

/// Sum of the generated durations (ideal serial work).
double total_work_seconds(
    const std::vector<pilot::ComputeUnitDescription>& units);

}  // namespace hoh::analytics
