#include "analytics/graph.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.h"
#include "common/random.h"

namespace hoh::analytics {

std::size_t Graph::edge_count() const {
  std::size_t degree_sum = 0;
  for (const auto& nbrs : adjacency) degree_sum += nbrs.size();
  return degree_sum / 2;
}

Graph graph_from_edges(
    std::size_t vertices,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  Graph g;
  g.adjacency.resize(vertices);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;  // no self-loops
    if (u >= vertices || v >= vertices) {
      throw common::ConfigError("edge endpoint out of range");
    }
    g.adjacency[u].push_back(v);
    g.adjacency[v].push_back(u);
  }
  for (auto& nbrs : g.adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return g;
}

Graph complete_graph(std::size_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return graph_from_edges(n, edges);
}

Graph preferential_attachment_graph(std::size_t vertices, int attach,
                                    std::uint64_t seed) {
  if (vertices < static_cast<std::size_t>(attach) + 1 || attach < 1) {
    throw common::ConfigError(
        "preferential attachment needs vertices > attach >= 1");
  }
  common::Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Repeated-endpoint list: picking a uniform element is
  // degree-proportional sampling.
  std::vector<std::uint32_t> endpoints;
  // Seed clique over the first attach+1 vertices.
  for (std::uint32_t u = 0; u <= static_cast<std::uint32_t>(attach); ++u) {
    for (std::uint32_t v = u + 1; v <= static_cast<std::uint32_t>(attach);
         ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (std::uint32_t v = static_cast<std::uint32_t>(attach) + 1;
       v < vertices; ++v) {
    std::vector<std::uint32_t> chosen;
    while (static_cast<int>(chosen.size()) < attach) {
      const auto pick = endpoints[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
        chosen.push_back(pick);
      }
    }
    for (const auto u : chosen) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return graph_from_edges(vertices, edges);
}

Graph random_graph(std::size_t vertices, double edge_probability,
                   std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < vertices; ++u) {
    for (std::uint32_t v = u + 1; v < vertices; ++v) {
      if (rng.bernoulli(edge_probability)) edges.emplace_back(u, v);
    }
  }
  return graph_from_edges(vertices, edges);
}

CsrAdjacency CsrAdjacency::build(const Graph& graph) {
  CsrAdjacency csr;
  const std::size_t n = graph.vertex_count();
  csr.offsets.resize(n + 1);
  std::size_t total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    csr.offsets[v] = static_cast<std::uint32_t>(total);
    total += graph.adjacency[v].size();
  }
  csr.offsets[n] = static_cast<std::uint32_t>(total);
  csr.targets.resize(total);
  for (std::size_t v = 0; v < n; ++v) {
    std::copy(graph.adjacency[v].begin(), graph.adjacency[v].end(),
              csr.targets.begin() + csr.offsets[v]);
  }
  return csr;
}

std::uint64_t count_triangles(common::ThreadPool& pool, const Graph& graph) {
  // Node-iterator with ordering: count each triangle at its smallest
  // vertex. For every neighbor v > u, merge-intersect the tails of the
  // two sorted rows above v — linear in d(u)+d(v) per edge, against the
  // binary-search formulation's d(u) log d(v) per candidate pair, and
  // every access streams the flat CSR rows.
  const CsrAdjacency csr = CsrAdjacency::build(graph);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(csr.vertex_count(), [&](std::size_t u) {
    const std::uint32_t* u_begin = csr.begin(u);
    const std::uint32_t* u_end = csr.end(u);
    std::uint64_t local = 0;
    for (const std::uint32_t* vi = u_begin; vi != u_end; ++vi) {
      const std::uint32_t v = *vi;
      if (v <= u) continue;
      // Tails strictly above v in both rows; rows are sorted.
      const std::uint32_t* a = vi + 1;
      const std::uint32_t* b =
          std::upper_bound(csr.begin(v), csr.end(v), v);
      const std::uint32_t* b_end = csr.end(v);
      while (a != u_end && b != b_end) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          ++local;
          ++a;
          ++b;
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

double clustering_coefficient(common::ThreadPool& pool, const Graph& graph) {
  const auto triangles = count_triangles(pool, graph);
  std::uint64_t wedges = 0;
  for (const auto& nbrs : graph.adjacency) {
    const std::uint64_t d = nbrs.size();
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) /
         static_cast<double>(wedges);
}

std::vector<double> pagerank(common::ThreadPool& pool, const Graph& graph,
                             int iterations, double damping) {
  const std::size_t n = graph.vertex_count();
  if (n == 0) return {};
  const CsrAdjacency csr = CsrAdjacency::build(graph);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  // Our adjacency is undirected, so each edge carries rank both ways
  // and in-neighbors equal out-neighbors: the update can be a *pull*
  // (gather) over each vertex's own CSR row, which parallelizes with
  // no write contention — unlike the push/scatter form, whose
  // next[v] += share writes race across rows. Summation order per
  // vertex (ascending neighbor id) matches the scatter form exactly,
  // so the scores are bit-identical.
  std::vector<double> share(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      const std::uint32_t d = csr.degree(u);
      share[u] = d == 0 ? 0.0 : rank[u] / static_cast<double>(d);
      if (d == 0) dangling += rank[u];
    }
    const double teleport =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    pool.parallel_for(n, [&](std::size_t v) {
      double sum = 0.0;
      const std::uint32_t* b = csr.begin(v);
      const std::uint32_t* e = csr.end(v);
      for (const std::uint32_t* it2 = b; it2 != e; ++it2) {
        sum += share[*it2];
      }
      next[v] = teleport + damping * sum;
    });
    rank.swap(next);
  }
  return rank;
}

std::vector<double> pagerank_rdd(spark::SparkEnv& env, const Graph& graph,
                                 int iterations, double damping) {
  using VertexRank = std::pair<std::uint32_t, double>;
  const std::size_t n = graph.vertex_count();
  if (n == 0) return {};

  // Adjacency as an RDD of (vertex, neighbors), cached across iterations
  // — the canonical Spark PageRank structure.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> adj;
  adj.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    adj.emplace_back(v, graph.adjacency[v]);
  }
  auto links = spark::Rdd<std::pair<std::uint32_t,
                                    std::vector<std::uint32_t>>>::
                   parallelize(env, adj, 8)
                       .cache();

  std::vector<VertexRank> rank_pairs;
  rank_pairs.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    rank_pairs.emplace_back(v, 1.0 / static_cast<double>(n));
  }
  auto ranks = spark::Rdd<VertexRank>::parallelize(env, rank_pairs, 8);

  for (int it = 0; it < iterations; ++it) {
    // Dangling mass handled exactly as in the threaded version.
    const double dangling =
        ranks
            .filter([&graph](const VertexRank& vr) {
              return graph.adjacency[vr.first].empty();
            })
            .map([](const VertexRank& vr) { return vr.second; })
            .fold(0.0, [](double a, double b) { return a + b; });
    auto contributions =
        spark::join(links, ranks)
            .flat_map([](const std::pair<
                          std::uint32_t,
                          std::pair<std::vector<std::uint32_t>, double>>&
                             row) {
              std::vector<VertexRank> out;
              const auto& nbrs = row.second.first;
              if (nbrs.empty()) return out;
              const double share =
                  row.second.second / static_cast<double>(nbrs.size());
              out.reserve(nbrs.size());
              for (const auto v : nbrs) out.emplace_back(v, share);
              return out;
            });
    const double teleport =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    auto summed = spark::reduce_by_key(
        contributions, [](double a, double b) { return a + b; }, 8);
    // Vertices with no incoming contribution still get the teleport term:
    // materialize into a dense vector.
    std::vector<double> dense(n, 0.0);
    for (const auto& [v, c] : summed.collect()) dense[v] = c;
    std::vector<VertexRank> next;
    next.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      next.emplace_back(v, teleport + damping * dense[v]);
    }
    ranks = spark::Rdd<VertexRank>::parallelize(env, next, 8);
  }
  std::vector<double> out(n, 0.0);
  for (const auto& [v, r] : ranks.collect()) out[v] = r;
  return out;
}

}  // namespace hoh::analytics
