#include "analytics/graph.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "common/error.h"
#include "common/random.h"

namespace hoh::analytics {

std::size_t Graph::edge_count() const {
  std::size_t degree_sum = 0;
  for (const auto& nbrs : adjacency) degree_sum += nbrs.size();
  return degree_sum / 2;
}

Graph graph_from_edges(
    std::size_t vertices,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  Graph g;
  g.adjacency.resize(vertices);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;  // no self-loops
    if (u >= vertices || v >= vertices) {
      throw common::ConfigError("edge endpoint out of range");
    }
    g.adjacency[u].push_back(v);
    g.adjacency[v].push_back(u);
  }
  for (auto& nbrs : g.adjacency) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return g;
}

Graph complete_graph(std::size_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return graph_from_edges(n, edges);
}

Graph preferential_attachment_graph(std::size_t vertices, int attach,
                                    std::uint64_t seed) {
  if (vertices < static_cast<std::size_t>(attach) + 1 || attach < 1) {
    throw common::ConfigError(
        "preferential attachment needs vertices > attach >= 1");
  }
  common::Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Repeated-endpoint list: picking a uniform element is
  // degree-proportional sampling.
  std::vector<std::uint32_t> endpoints;
  // Seed clique over the first attach+1 vertices.
  for (std::uint32_t u = 0; u <= static_cast<std::uint32_t>(attach); ++u) {
    for (std::uint32_t v = u + 1; v <= static_cast<std::uint32_t>(attach);
         ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (std::uint32_t v = static_cast<std::uint32_t>(attach) + 1;
       v < vertices; ++v) {
    std::vector<std::uint32_t> chosen;
    while (static_cast<int>(chosen.size()) < attach) {
      const auto pick = endpoints[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoints.size()) - 1))];
      if (std::find(chosen.begin(), chosen.end(), pick) == chosen.end()) {
        chosen.push_back(pick);
      }
    }
    for (const auto u : chosen) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return graph_from_edges(vertices, edges);
}

Graph random_graph(std::size_t vertices, double edge_probability,
                   std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < vertices; ++u) {
    for (std::uint32_t v = u + 1; v < vertices; ++v) {
      if (rng.bernoulli(edge_probability)) edges.emplace_back(u, v);
    }
  }
  return graph_from_edges(vertices, edges);
}

std::uint64_t count_triangles(common::ThreadPool& pool, const Graph& graph) {
  // Node-iterator with ordering: count each triangle at its smallest
  // vertex by intersecting higher-numbered neighbor lists.
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(graph.vertex_count(), [&](std::size_t u) {
    const auto& nbrs = graph.adjacency[u];
    std::uint64_t local = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto v = nbrs[i];
      if (v <= u) continue;
      const auto& v_nbrs = graph.adjacency[v];
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const auto w = nbrs[j];
        if (w <= v) continue;
        if (std::binary_search(v_nbrs.begin(), v_nbrs.end(), w)) ++local;
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

double clustering_coefficient(common::ThreadPool& pool, const Graph& graph) {
  const auto triangles = count_triangles(pool, graph);
  std::uint64_t wedges = 0;
  for (const auto& nbrs : graph.adjacency) {
    const std::uint64_t d = nbrs.size();
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangles) /
         static_cast<double>(wedges);
}

std::vector<double> pagerank(common::ThreadPool& pool, const Graph& graph,
                             int iterations, double damping) {
  const std::size_t n = graph.vertex_count();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    // Contributions: our adjacency is undirected, so each edge carries
    // rank both ways (rank[u]/deg(u) to each neighbor).
    for (std::size_t u = 0; u < n; ++u) {
      if (graph.adjacency[u].empty()) {
        dangling += rank[u];
        continue;
      }
      const double share =
          rank[u] / static_cast<double>(graph.adjacency[u].size());
      for (const auto v : graph.adjacency[u]) next[v] += share;
    }
    const double teleport =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    pool.parallel_for(n, [&](std::size_t v) {
      next[v] = teleport + damping * next[v];
    });
    rank.swap(next);
  }
  return rank;
}

std::vector<double> pagerank_rdd(spark::SparkEnv& env, const Graph& graph,
                                 int iterations, double damping) {
  using VertexRank = std::pair<std::uint32_t, double>;
  const std::size_t n = graph.vertex_count();
  if (n == 0) return {};

  // Adjacency as an RDD of (vertex, neighbors), cached across iterations
  // — the canonical Spark PageRank structure.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> adj;
  adj.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    adj.emplace_back(v, graph.adjacency[v]);
  }
  auto links = spark::Rdd<std::pair<std::uint32_t,
                                    std::vector<std::uint32_t>>>::
                   parallelize(env, adj, 8)
                       .cache();

  std::vector<VertexRank> rank_pairs;
  rank_pairs.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    rank_pairs.emplace_back(v, 1.0 / static_cast<double>(n));
  }
  auto ranks = spark::Rdd<VertexRank>::parallelize(env, rank_pairs, 8);

  for (int it = 0; it < iterations; ++it) {
    // Dangling mass handled exactly as in the threaded version.
    const double dangling =
        ranks
            .filter([&graph](const VertexRank& vr) {
              return graph.adjacency[vr.first].empty();
            })
            .map([](const VertexRank& vr) { return vr.second; })
            .fold(0.0, [](double a, double b) { return a + b; });
    auto contributions =
        spark::join(links, ranks)
            .flat_map([](const std::pair<
                          std::uint32_t,
                          std::pair<std::vector<std::uint32_t>, double>>&
                             row) {
              std::vector<VertexRank> out;
              const auto& nbrs = row.second.first;
              if (nbrs.empty()) return out;
              const double share =
                  row.second.second / static_cast<double>(nbrs.size());
              out.reserve(nbrs.size());
              for (const auto v : nbrs) out.emplace_back(v, share);
              return out;
            });
    const double teleport =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    auto summed = spark::reduce_by_key(
        contributions, [](double a, double b) { return a + b; }, 8);
    // Vertices with no incoming contribution still get the teleport term:
    // materialize into a dense vector.
    std::vector<double> dense(n, 0.0);
    for (const auto& [v, c] : summed.collect()) dense[v] = c;
    std::vector<VertexRank> next;
    next.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      next.emplace_back(v, teleport + damping * dense[v]);
    }
    ranks = spark::Rdd<VertexRank>::parallelize(env, next, 8);
  }
  std::vector<double> out(n, 0.0);
  for (const auto& [v, r] : ranks.collect()) out[v] = r;
  return out;
}

}  // namespace hoh::analytics
