#include "analytics/workload_gen.h"

#include <cmath>

#include "common/error.h"
#include "common/random.h"

namespace hoh::analytics {

std::string to_string(DurationDistribution dist) {
  switch (dist) {
    case DurationDistribution::kConstant:
      return "constant";
    case DurationDistribution::kUniform:
      return "uniform";
    case DurationDistribution::kBimodal:
      return "bimodal";
    case DurationDistribution::kHeavyTail:
      return "heavy-tail";
  }
  return "?";
}

std::vector<pilot::ComputeUnitDescription> generate_workload(
    const WorkloadSpec& spec) {
  if (spec.units < 1 || spec.mean_seconds <= 0.0) {
    throw common::ConfigError(
        "WorkloadSpec: units >= 1 and mean_seconds > 0 required");
  }
  common::Rng rng(spec.seed);
  std::vector<pilot::ComputeUnitDescription> out;
  out.reserve(static_cast<std::size_t>(spec.units));
  for (int i = 0; i < spec.units; ++i) {
    pilot::ComputeUnitDescription cud;
    cud.name = spec.executable + "-" + std::to_string(i);
    cud.executable = spec.executable;
    cud.cores = spec.cores;
    cud.memory_mb = spec.memory_mb;
    switch (spec.distribution) {
      case DurationDistribution::kConstant:
        cud.duration = spec.mean_seconds;
        break;
      case DurationDistribution::kUniform:
        cud.duration = rng.uniform(0.5, 1.5) * spec.mean_seconds;
        break;
      case DurationDistribution::kBimodal:
        cud.duration = rng.bernoulli(0.9) ? 0.25 * spec.mean_seconds
                                          : 7.75 * spec.mean_seconds;
        break;
      case DurationDistribution::kHeavyTail: {
        // Log-normal: mean = median * exp(sigma^2 / 2); pick the median
        // so the distribution mean equals mean_seconds with sigma = 1.
        const double sigma = 1.0;
        const double median =
            spec.mean_seconds / std::exp(sigma * sigma / 2.0);
        cud.duration = rng.lognormal(median, sigma);
        break;
      }
    }
    out.push_back(std::move(cud));
  }
  return out;
}

double total_work_seconds(
    const std::vector<pilot::ComputeUnitDescription>& units) {
  double total = 0.0;
  for (const auto& u : units) total += u.duration;
  return total;
}

}  // namespace hoh::analytics
