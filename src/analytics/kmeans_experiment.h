#pragma once

#include <string>

#include "analytics/kmeans_cost.h"
#include "elastic/elastic_controller.h"
#include "hpc/frontends.h"
#include "pilot/descriptions.h"

/// \file kmeans_experiment.h
/// Turn-key driver for one cell of the paper's Fig. 6: runs the K-Means
/// benchmark end-to-end through the *real simulated middleware* — batch
/// scheduler, pilot agent, (for the YARN stack) Mode-I bootstrap, YARN
/// AM/container allocation per Compute-Unit — with per-task durations
/// from the workload cost model. Each iteration submits one wave of map
/// units and one wave of reduce units, barrier-synchronized the way the
/// paper's benchmark ran.

namespace hoh::analytics {

struct KmeansExperimentConfig {
  cluster::MachineProfile machine;
  hpc::SchedulerKind scheduler = hpc::SchedulerKind::kSlurm;
  KmeansScenario scenario;
  int nodes = 1;
  int tasks = 8;

  /// true = RP-YARN (Mode I: bootstrap YARN/HDFS on the allocation, CUs
  /// as YARN applications, local-disk I/O); false = plain RADICAL-Pilot
  /// (fork launch method, shared-filesystem I/O).
  bool yarn_stack = false;

  /// Workload cost-model knobs (see KmeansRunConfig).
  double op_cost = 4.0e-5;
  double shuffle_amplification = 4.0;

  /// Agent calibration (paper-era RADICAL-Pilot defaults).
  common::Seconds spawn_latency = 1.2;    // serialized Task Spawner
  common::Seconds yarn_submit_latency = 0.3;

  /// Extension toggle: reuse one Application Master for all units.
  bool reuse_yarn_app = false;

  /// Container memory for YARN-path units.
  common::MemoryMb unit_memory_mb = 0;  // 0 = stack default

  /// Elasticity (plan "elastic" section): when enabled the pilot starts
  /// at `nodes` and an ElasticController resizes it up to
  /// `elastic.max_nodes` under the named policy. The machine pool is
  /// sized to max_nodes so growth has somewhere to go.
  bool elastic = false;
  elastic::ElasticPolicySpec elastic_policy;
  elastic::ElasticControllerConfig elastic_config;
};

struct KmeansExperimentResult {
  /// Agent start (placeholder job running) to last unit done — the
  /// paper's time-to-completion, which for RP-YARN "include[s] the time
  /// required to download and start the YARN cluster".
  double time_to_completion = 0.0;

  /// Agent start to first unit executing (Fig. 5 metric).
  double agent_startup = 0.0;

  /// Mean unit-startup span across all units (Fig. 5 inset metric).
  double mean_unit_startup = 0.0;

  std::size_t units_completed = 0;
  bool ok = false;

  /// Controller counters (all zeros when elasticity was disabled).
  elastic::ElasticCounters elastic_counters;
  int peak_nodes = 0;  // largest allocation the pilot held
};

KmeansExperimentResult run_kmeans_experiment(
    const KmeansExperimentConfig& config);

}  // namespace hoh::analytics
