#pragma once

#include <string>

#include <cstdint>

#include "analytics/kmeans_cost.h"
#include "common/control_plane.h"
#include "common/retry.h"
#include "elastic/elastic_controller.h"
#include "hpc/frontends.h"
#include "net/socket_transport.h"
#include "pilot/descriptions.h"
#include "sim/failure_injector.h"
#include "tenant/submission_gateway.h"

/// \file kmeans_experiment.h
/// Turn-key driver for one cell of the paper's Fig. 6: runs the K-Means
/// benchmark end-to-end through the *real simulated middleware* — batch
/// scheduler, pilot agent, (for the YARN stack) Mode-I bootstrap, YARN
/// AM/container allocation per Compute-Unit — with per-task durations
/// from the workload cost model. Each iteration submits one wave of map
/// units and one wave of reduce units, barrier-synchronized the way the
/// paper's benchmark ran.

namespace hoh::analytics {

struct KmeansExperimentConfig {
  cluster::MachineProfile machine;
  hpc::SchedulerKind scheduler = hpc::SchedulerKind::kSlurm;
  KmeansScenario scenario;
  int nodes = 1;
  int tasks = 8;

  /// true = RP-YARN (Mode I: bootstrap YARN/HDFS on the allocation, CUs
  /// as YARN applications, local-disk I/O); false = plain RADICAL-Pilot
  /// (fork launch method, shared-filesystem I/O).
  bool yarn_stack = false;

  /// Control-plane mode for the whole middleware stack (plan
  /// "control_plane": "poll" | "watch", DESIGN.md §10): agent, unit
  /// manager, YARN RM and elastic controller all follow it. The two modes
  /// must complete the same unit set (identical output_checksum); watch
  /// mode executes far fewer engine events on idle-heavy cells.
  common::ControlPlane control_plane = common::ControlPlane::kPoll;

  /// Workload cost-model knobs (see KmeansRunConfig).
  double op_cost = 4.0e-5;
  double shuffle_amplification = 4.0;

  /// Agent calibration (paper-era RADICAL-Pilot defaults).
  common::Seconds spawn_latency = 1.2;    // serialized Task Spawner
  common::Seconds yarn_submit_latency = 0.3;

  /// Extension toggle: reuse one Application Master for all units.
  bool reuse_yarn_app = false;

  /// Container memory for YARN-path units.
  common::MemoryMb unit_memory_mb = 0;  // 0 = stack default

  /// Elasticity (plan "elastic" section): when enabled the pilot starts
  /// at `nodes` and an ElasticController resizes it up to
  /// `elastic.max_nodes` under the named policy. The machine pool is
  /// sized to max_nodes so growth has somewhere to go.
  bool elastic = false;
  elastic::ElasticPolicySpec elastic_policy;
  elastic::ElasticControllerConfig elastic_config;

  /// Fault injection (plan "failures" section): a seeded crash / repair /
  /// slow-node schedule delivered to the machine's batch pool, so a
  /// mid-run node loss kills the placeholder job exactly the way a real
  /// HPC node failure would.
  bool failures = false;
  sim::FailurePlan failure_plan;

  /// Recovery (plan "recovery" section): pilot resubmission
  /// (PilotManager), unit requeue onto survivors (UnitManager), both
  /// under this retry budget. Off = the ablation baseline where a node
  /// loss fails the job.
  bool recovery = false;
  common::RetryPolicy retry_policy;

  /// Multi-tenancy (plan "tenants" section): when enabled, unit waves
  /// are submitted through a SubmissionGateway (units assigned to the
  /// listed tenants round-robin), so admission control, fair-share
  /// ordering and per-tenant accounting apply. When disabled — the
  /// default — no gateway object exists and submission is byte-identical
  /// to the pre-tenant path (single anonymous submitter).
  bool tenants = false;
  tenant::GatewayConfig gateway_config;
  std::vector<tenant::TenantSpec> tenant_specs;

  /// Plan "tenants.journal": when non-empty, the gateway's accounting
  /// journal is written to this path at the end of the run.
  std::string accounting_journal;

  /// Plan "allow_failure": a cell expected to fail (e.g. the recovery-off
  /// arm of the fault ablation) does not fail the whole hohsim run.
  bool allow_failure = false;

  /// Plan "store_shards": StateStore shard count for this cell
  /// (DESIGN.md §13). Digests are shard-count independent, which the CI
  /// scale job asserts by running the same cell sharded and unsharded.
  int store_shards = 1;

  /// Plan "trace_rollup": fold per-unit trace events into O(1) counters
  /// (DESIGN.md §13). Required at the 1M-unit scale — the raw event list
  /// would dominate peak RSS. Digests are unaffected (the checksum is
  /// computed from store documents, not the trace).
  bool trace_rollup = false;

  /// Plan "transport": "inprocess" (default) | "socket" (DESIGN.md §14).
  /// socket swaps the session's message boundary onto a loopback-TCP
  /// SocketTransport (epoll reactor) before any endpoint registers.
  /// Digests must be byte-identical across the two modes — the CI
  /// socket-parity job's gate.
  std::string transport = "inprocess";

  /// Plan "net" section: socket-transport knobs (bind host/port, the
  /// reconnect RetryPolicy and its seed). Ignored for "inprocess".
  net::SocketTransportConfig net;

  /// Plan "pilot_runtime": pilot walltime request in simulated seconds.
  /// The 48 h default covers every paper-scale cell; the web-scale
  /// keystone needs ~5 simulated days for 20 iterations of 50k units, so
  /// its plan raises this — otherwise the batch system walltime-kills
  /// the pilot mid-trajectory (DESIGN.md §13).
  common::Seconds pilot_runtime = 48 * 3600.0;
};

struct KmeansExperimentResult {
  /// Agent start (placeholder job running) to last unit done — the
  /// paper's time-to-completion, which for RP-YARN "include[s] the time
  /// required to download and start the YARN cluster".
  double time_to_completion = 0.0;

  /// Agent start to first unit executing (Fig. 5 metric).
  double agent_startup = 0.0;

  /// Mean unit-startup span across all units (Fig. 5 inset metric).
  double mean_unit_startup = 0.0;

  std::size_t units_completed = 0;
  bool ok = false;

  /// Controller counters (all zeros when elasticity was disabled).
  elastic::ElasticCounters elastic_counters;
  int peak_nodes = 0;  // largest allocation the pilot held

  /// Fault & recovery accounting (all zeros without a failure plan).
  sim::FailureCounters failure_counters;
  std::size_t pilots_resubmitted = 0;
  std::size_t units_requeued = 0;
  std::size_t units_abandoned = 0;

  /// Deterministic digest (FNV-1a over the sorted names of completed
  /// units). A recovered run must reproduce the no-failure digest —
  /// the "byte-identical output" check of the fault ablation.
  std::string output_checksum;

  /// Engine events executed over the whole run — the control-plane
  /// ablation metric (bench/ablation_control_plane).
  std::uint64_t engine_events = 0;

  /// Multi-tenant accounting (null Json when the cell had no tenants
  /// section): the gateway's per-tenant aggregates, without the journal.
  common::Json tenant_accounting;
  std::size_t units_preempted = 0;
};

KmeansExperimentResult run_kmeans_experiment(
    const KmeansExperimentConfig& config);

}  // namespace hoh::analytics
