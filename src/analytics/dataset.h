#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/random.h"

/// \file dataset.h
/// Point types and synthetic dataset generators for the K-Means workload
/// (paper SS-IV-B: 3-dimensional points).

namespace hoh::analytics {

/// A point in R^3 — the space the paper's benchmark uses.
using Point3 = std::array<double, 3>;

// Point arithmetic is header-inline: distance2 sits in the innermost
// loop of every K-Means backend (points x centroids evaluations per
// iteration), and an out-of-line definition would cost a cross-TU call
// per evaluation.
inline Point3 operator+(const Point3& a, const Point3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}

inline Point3 operator-(const Point3& a, const Point3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}

inline Point3 operator*(const Point3& a, double s) {
  return {a[0] * s, a[1] * s, a[2] * s};
}

/// Squared Euclidean distance.
inline double distance2(const Point3& a, const Point3& b) {
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  const double dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

/// Draws \p n points from \p k Gaussian blobs with centers uniform in
/// [-range, range]^3 and the given per-axis standard deviation.
/// Deterministic for a fixed seed. Returns points; \p true_centers (when
/// non-null) receives the blob centers in generation order.
std::vector<Point3> gaussian_blobs(std::size_t n, std::size_t k,
                                   std::uint64_t seed, double range = 100.0,
                                   double stddev = 2.0,
                                   std::vector<Point3>* true_centers =
                                       nullptr);

/// Uniform points in [-range, range]^3.
std::vector<Point3> uniform_points(std::size_t n, std::uint64_t seed,
                                   double range = 100.0);

/// Approximate serialized size of a point in the paper's text format
/// (three ~15-char decimals + separators), used by the cost model.
inline constexpr std::int64_t kPointRecordBytes = 50;

/// Bytes of one shuffled (cluster id, point) pair in the MR formulation
/// (verbose text key-value encoding, as the paper-era tooling produced).
inline constexpr std::int64_t kEmitRecordBytes = 120;

}  // namespace hoh::analytics
