#include "analytics/experiment_config.h"

#include <initializer_list>
#include <string>

#include "common/error.h"
#include "common/logging.h"

namespace hoh::analytics {
namespace {

bool g_strict_plan_parsing = false;

/// Unknown keys warn instead of erroring so older binaries keep running
/// newer plans, but a typo ("tenant" for "tenants") is never silent. In
/// strict mode (hohsim --strict, used by every CI invocation) the same
/// typo is a hard ConfigError.
void warn_unknown_keys(const common::Json& obj,
                       std::initializer_list<const char*> known,
                       const std::string& where) {
  for (const auto& [key, value] : obj.as_object()) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      if (g_strict_plan_parsing) {
        throw common::ConfigError("unknown key \"" + key + "\" in " + where +
                                  " (strict mode)");
      }
      common::Logger("hohsim").warn("ignoring unknown key \"" + key +
                                    "\" in " + where);
    }
  }
}

cluster::MachineProfile machine_by_name(const std::string& name) {
  if (name == "stampede") return cluster::stampede_profile();
  if (name == "wrangler") return cluster::wrangler_profile();
  if (name == "generic") return cluster::generic_profile();
  throw common::ConfigError("unknown machine: " + name);
}

hpc::SchedulerKind scheduler_for(const std::string& machine) {
  // Stampede ran SLURM, Wrangler's reservations go through SGE.
  return machine == "wrangler" ? hpc::SchedulerKind::kSge
                               : hpc::SchedulerKind::kSlurm;
}

KmeansScenario scenario_from(const common::Json& value) {
  if (value.is_string()) {
    const std::string& name = value.as_string();
    if (name == "10k") return scenario_10k_points();
    if (name == "100k") return scenario_100k_points();
    if (name == "1m" || name == "1M") return scenario_1m_points();
    throw common::ConfigError("unknown scenario: " + name);
  }
  if (value.is_object()) {
    KmeansScenario s;
    s.points = value.at("points").as_int();
    s.clusters = value.at("clusters").as_int();
    if (value.contains("iterations")) {
      s.iterations = static_cast<int>(value.at("iterations").as_int());
    }
    if (s.points < 1 || s.clusters < 1 || s.iterations < 1) {
      throw common::ConfigError("scenario fields must be >= 1");
    }
    s.label = std::to_string(s.points) + " pts / " +
              std::to_string(s.clusters) + " clusters";
    return s;
  }
  throw common::ConfigError("scenario must be a string or an object");
}

}  // namespace

void set_strict_plan_parsing(bool strict) { g_strict_plan_parsing = strict; }

bool strict_plan_parsing() { return g_strict_plan_parsing; }

KmeansExperimentConfig kmeans_config_from_json(const common::Json& doc) {
  if (!doc.is_object()) {
    throw common::ConfigError("experiment must be a JSON object");
  }
  KmeansExperimentConfig cfg;
  const std::string machine =
      doc.contains("machine") ? doc.at("machine").as_string() : "stampede";
  cfg.machine = machine_by_name(machine);
  cfg.scheduler = scheduler_for(machine);
  cfg.scenario = doc.contains("scenario")
                     ? scenario_from(doc.at("scenario"))
                     : scenario_1m_points();
  if (doc.contains("nodes")) {
    cfg.nodes = static_cast<int>(doc.at("nodes").as_int());
  }
  if (doc.contains("tasks")) {
    cfg.tasks = static_cast<int>(doc.at("tasks").as_int());
  }
  if (cfg.nodes < 1 || cfg.tasks < 1) {
    throw common::ConfigError("nodes and tasks must be >= 1");
  }
  if (doc.contains("stack")) {
    const std::string& stack = doc.at("stack").as_string();
    if (stack == "rp") {
      cfg.yarn_stack = false;
    } else if (stack == "rp-yarn" || stack == "yarn") {
      cfg.yarn_stack = true;
    } else {
      throw common::ConfigError("unknown stack: " + stack);
    }
  }
  if (doc.contains("op_cost")) {
    cfg.op_cost = doc.at("op_cost").as_number();
  }
  if (doc.contains("shuffle_amplification")) {
    cfg.shuffle_amplification = doc.at("shuffle_amplification").as_number();
  }
  if (doc.contains("reuse_yarn_app")) {
    cfg.reuse_yarn_app = doc.at("reuse_yarn_app").as_bool();
  }
  if (doc.contains("control_plane")) {
    cfg.control_plane =
        common::control_plane_from_string(doc.at("control_plane").as_string());
  }
  if (doc.contains("elastic")) {
    const common::Json& e = doc.at("elastic");
    if (!e.is_object()) {
      throw common::ConfigError("\"elastic\" must be an object");
    }
    cfg.elastic = true;
    cfg.elastic_config.min_nodes = cfg.nodes;
    cfg.elastic_config.max_nodes = cfg.nodes;
    if (e.contains("policy")) {
      cfg.elastic_policy.name = e.at("policy").as_string();
    }
    if (e.contains("params")) {
      for (const auto& [key, value] : e.at("params").as_object()) {
        cfg.elastic_policy.params[key] = value.as_number();
      }
    }
    if (e.contains("sample_interval")) {
      cfg.elastic_config.sample_interval =
          e.at("sample_interval").as_number();
    }
    if (e.contains("max_nodes")) {
      cfg.elastic_config.max_nodes =
          static_cast<int>(e.at("max_nodes").as_int());
    }
    if (e.contains("min_nodes")) {
      cfg.elastic_config.min_nodes =
          static_cast<int>(e.at("min_nodes").as_int());
    }
    if (e.contains("drain_timeout")) {
      cfg.elastic_config.drain_timeout = e.at("drain_timeout").as_number();
    }
    if (cfg.elastic_config.max_nodes < cfg.nodes) {
      throw common::ConfigError("elastic.max_nodes must be >= nodes");
    }
    // Fail fast on a bad policy name or parameter, before any run time
    // is spent.
    elastic::make_policy(cfg.elastic_policy);
  }
  if (doc.contains("failures")) {
    const common::Json& f = doc.at("failures");
    if (!f.is_object()) {
      throw common::ConfigError("\"failures\" must be an object");
    }
    cfg.failures = true;
    if (f.contains("seed")) {
      cfg.failure_plan.seed =
          static_cast<std::uint64_t>(f.at("seed").as_int());
    }
    if (f.contains("mean_time_to_crash")) {
      cfg.failure_plan.mean_time_to_crash =
          f.at("mean_time_to_crash").as_number();
    }
    if (f.contains("mean_time_to_repair")) {
      cfg.failure_plan.mean_time_to_repair =
          f.at("mean_time_to_repair").as_number();
    }
    if (f.contains("mean_time_to_slow")) {
      cfg.failure_plan.mean_time_to_slow =
          f.at("mean_time_to_slow").as_number();
    }
    if (f.contains("slow_factor")) {
      cfg.failure_plan.slow_factor = f.at("slow_factor").as_number();
    }
    if (f.contains("slow_duration")) {
      cfg.failure_plan.slow_duration = f.at("slow_duration").as_number();
    }
    if (f.contains("max_crashes")) {
      cfg.failure_plan.max_crashes =
          static_cast<int>(f.at("max_crashes").as_int());
    }
    if (f.contains("start_after")) {
      cfg.failure_plan.start_after = f.at("start_after").as_number();
    }
    cfg.failure_plan.validate();
  }
  if (doc.contains("recovery")) {
    const common::Json& r = doc.at("recovery");
    if (!r.is_object()) {
      throw common::ConfigError("\"recovery\" must be an object");
    }
    cfg.recovery = true;
    if (r.contains("max_attempts")) {
      cfg.retry_policy.max_attempts =
          static_cast<int>(r.at("max_attempts").as_int());
    }
    if (r.contains("base_backoff")) {
      cfg.retry_policy.base_backoff = r.at("base_backoff").as_number();
    }
    if (r.contains("multiplier")) {
      cfg.retry_policy.multiplier = r.at("multiplier").as_number();
    }
    if (r.contains("max_backoff")) {
      cfg.retry_policy.max_backoff = r.at("max_backoff").as_number();
    }
    if (r.contains("jitter")) {
      cfg.retry_policy.jitter = r.at("jitter").as_number();
    }
    cfg.retry_policy.validate();
  }
  if (doc.contains("tenants")) {
    const common::Json& t = doc.at("tenants");
    if (!t.is_object()) {
      throw common::ConfigError("\"tenants\" must be an object");
    }
    warn_unknown_keys(t,
                      {"policy", "decay_half_life", "dispatch_window",
                       "preemption", "preempt_ratio", "journal", "list"},
                      "tenants");
    cfg.tenants = true;
    if (t.contains("policy")) {
      cfg.gateway_config.policy =
          tenant::scheduling_policy_from_string(t.at("policy").as_string());
    }
    if (t.contains("decay_half_life")) {
      cfg.gateway_config.decay_half_life =
          t.at("decay_half_life").as_number();
    }
    if (t.contains("dispatch_window")) {
      cfg.gateway_config.dispatch_window =
          static_cast<int>(t.at("dispatch_window").as_int());
    }
    if (t.contains("preemption")) {
      cfg.gateway_config.preemption = t.at("preemption").as_bool();
    }
    if (t.contains("preempt_ratio")) {
      cfg.gateway_config.preempt_ratio = t.at("preempt_ratio").as_number();
    }
    if (t.contains("journal")) {
      cfg.accounting_journal = t.at("journal").as_string();
    }
    if (!t.contains("list") || !t.at("list").is_array()) {
      throw common::ConfigError("\"tenants\" needs a \"list\" array");
    }
    for (const auto& entry : t.at("list").as_array()) {
      if (!entry.is_object()) {
        throw common::ConfigError("tenants.list entries must be objects");
      }
      warn_unknown_keys(entry,
                        {"id", "share", "max_in_flight", "max_cores",
                         "submit_rate", "submit_burst"},
                        "tenants.list entry");
      tenant::TenantSpec spec;
      spec.id = entry.at("id").as_string();
      if (entry.contains("share")) {
        spec.share_weight = entry.at("share").as_number();
      }
      if (entry.contains("max_in_flight")) {
        spec.quota.max_in_flight_units =
            static_cast<int>(entry.at("max_in_flight").as_int());
      }
      if (entry.contains("max_cores")) {
        spec.quota.max_cores =
            static_cast<int>(entry.at("max_cores").as_int());
      }
      if (entry.contains("submit_rate")) {
        spec.quota.submit_rate = entry.at("submit_rate").as_number();
      }
      if (entry.contains("submit_burst")) {
        spec.quota.submit_burst = entry.at("submit_burst").as_number();
      }
      if (spec.share_weight <= 0.0) {
        throw common::ConfigError("tenant \"" + spec.id +
                                  "\": share must be > 0");
      }
      cfg.tenant_specs.push_back(std::move(spec));
    }
    if (cfg.tenant_specs.empty()) {
      throw common::ConfigError("tenants.list is empty");
    }
  }
  if (doc.contains("allow_failure")) {
    cfg.allow_failure = doc.at("allow_failure").as_bool();
  }
  if (doc.contains("store_shards")) {
    cfg.store_shards = static_cast<int>(doc.at("store_shards").as_int());
    if (cfg.store_shards < 1) {
      throw common::ConfigError("store_shards must be >= 1");
    }
  }
  if (doc.contains("spawn_latency")) {
    cfg.spawn_latency = doc.at("spawn_latency").as_number();
    if (cfg.spawn_latency < 0.0) {
      throw common::ConfigError("spawn_latency must be >= 0");
    }
  }
  if (doc.contains("trace_rollup")) {
    cfg.trace_rollup = doc.at("trace_rollup").as_bool();
  }
  if (doc.contains("pilot_runtime")) {
    cfg.pilot_runtime = doc.at("pilot_runtime").as_number();
    if (cfg.pilot_runtime <= 0.0) {
      throw common::ConfigError("pilot_runtime must be > 0");
    }
  }
  if (doc.contains("transport")) {
    cfg.transport = doc.at("transport").as_string();
    if (cfg.transport != "inprocess" && cfg.transport != "socket") {
      throw common::ConfigError("unknown transport: " + cfg.transport +
                                " (expected \"inprocess\" or \"socket\")");
    }
  }
  if (doc.contains("net")) {
    const common::Json& n = doc.at("net");
    if (n.contains("host")) {
      cfg.net.host = n.at("host").as_string();
    }
    if (n.contains("port")) {
      const std::int64_t port = n.at("port").as_int();
      if (port < 0 || port > 65535) {
        throw common::ConfigError("net.port must be in [0, 65535]");
      }
      cfg.net.port = static_cast<std::uint16_t>(port);
    }
    if (n.contains("reconnect_attempts")) {
      cfg.net.reconnect.max_attempts =
          static_cast<int>(n.at("reconnect_attempts").as_int());
      if (cfg.net.reconnect.max_attempts < 1) {
        throw common::ConfigError("net.reconnect_attempts must be >= 1");
      }
    }
    if (n.contains("reconnect_backoff")) {
      cfg.net.reconnect.base_backoff = n.at("reconnect_backoff").as_number();
      if (cfg.net.reconnect.base_backoff < 0.0) {
        throw common::ConfigError("net.reconnect_backoff must be >= 0");
      }
    }
    if (n.contains("reconnect_seed")) {
      cfg.net.reconnect_seed =
          static_cast<std::uint64_t>(n.at("reconnect_seed").as_int());
    }
    warn_unknown_keys(n,
                      {"host", "port", "reconnect_attempts",
                       "reconnect_backoff", "reconnect_seed"},
                      "experiment.net");
  }
  warn_unknown_keys(doc,
                    {"machine", "scenario", "nodes", "tasks", "stack",
                     "op_cost", "shuffle_amplification", "reuse_yarn_app",
                     "control_plane", "elastic", "failures", "recovery",
                     "tenants", "allow_failure", "store_shards",
                     "spawn_latency", "trace_rollup", "pilot_runtime",
                     "transport", "net"},
                    "experiment");
  return cfg;
}

std::vector<KmeansExperimentConfig> experiment_plan_from_json(
    const common::Json& doc) {
  if (!doc.contains("experiments") || !doc.at("experiments").is_array()) {
    throw common::ConfigError(
        "experiment plan needs an \"experiments\" array");
  }
  warn_unknown_keys(doc, {"experiments"}, "plan");
  std::vector<KmeansExperimentConfig> plan;
  for (const auto& entry : doc.at("experiments").as_array()) {
    plan.push_back(kmeans_config_from_json(entry));
  }
  if (plan.empty()) {
    throw common::ConfigError("experiment plan is empty");
  }
  return plan;
}

common::Json result_to_json(const KmeansExperimentConfig& config,
                            const KmeansExperimentResult& result) {
  common::Json j;
  j["machine"] = config.machine.name;
  j["scenario"] = config.scenario.label;
  j["nodes"] = static_cast<std::int64_t>(config.nodes);
  j["tasks"] = static_cast<std::int64_t>(config.tasks);
  j["stack"] = config.yarn_stack ? "rp-yarn" : "rp";
  j["control_plane"] = common::to_string(config.control_plane);
  j["ok"] = result.ok;
  j["time_to_completion_s"] = result.time_to_completion;
  j["agent_startup_s"] = result.agent_startup;
  j["mean_unit_startup_s"] = result.mean_unit_startup;
  j["units_completed"] = static_cast<std::int64_t>(result.units_completed);
  j["engine_events"] = static_cast<std::int64_t>(result.engine_events);
  j["store_shards"] = static_cast<std::int64_t>(config.store_shards);
  j["transport"] = config.transport;
  j["outputChecksum"] = result.output_checksum;
  if (config.elastic) {
    j["elastic"] = common::Json(common::JsonObject{
        {"policy", config.elastic_policy.name},
        {"maxNodes", config.elastic_config.max_nodes},
        {"peakNodes", result.peak_nodes},
        {"counters", result.elastic_counters.to_json()}});
  }
  if (config.failures) {
    j["failures"] = common::Json(common::JsonObject{
        {"seed", static_cast<std::int64_t>(config.failure_plan.seed)},
        {"crashes",
         static_cast<std::int64_t>(result.failure_counters.crashes)},
        {"repairs",
         static_cast<std::int64_t>(result.failure_counters.repairs)},
        {"slowEpisodes",
         static_cast<std::int64_t>(result.failure_counters.slow_episodes)},
        {"recovery", config.recovery},
        {"pilotsResubmitted",
         static_cast<std::int64_t>(result.pilots_resubmitted)},
        {"unitsRequeued",
         static_cast<std::int64_t>(result.units_requeued)},
        {"unitsAbandoned",
         static_cast<std::int64_t>(result.units_abandoned)},
        {"outputChecksum", result.output_checksum}});
  }
  if (config.tenants) {
    j["tenants"] = common::Json(common::JsonObject{
        {"policy", tenant::to_string(config.gateway_config.policy)},
        {"tenantCount",
         static_cast<std::int64_t>(config.tenant_specs.size())},
        {"preemption", config.gateway_config.preemption},
        {"unitsPreempted",
         static_cast<std::int64_t>(result.units_preempted)},
        {"accounting", result.tenant_accounting}});
  }
  return j;
}

}  // namespace hoh::analytics
