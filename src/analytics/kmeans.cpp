#include "analytics/kmeans.h"

#include <limits>

#include "common/error.h"
#include "mapreduce/mr_engine.h"

namespace hoh::analytics {
namespace {

/// Running sum + count per cluster for centroid updates.
struct ClusterAccum {
  Point3 sum{0.0, 0.0, 0.0};
  std::size_t count = 0;

  void add(const Point3& p) {
    sum = sum + p;
    ++count;
  }
  void merge(const ClusterAccum& other) {
    sum = sum + other.sum;
    count += other.count;
  }
};

/// New centroids from per-cluster accumulators; empty clusters keep the
/// previous centroid (the convention all four backends share).
std::vector<Point3> update_centroids(const std::vector<Point3>& previous,
                                     const std::vector<ClusterAccum>& acc) {
  std::vector<Point3> next = previous;
  for (std::size_t c = 0; c < previous.size(); ++c) {
    if (acc[c].count > 0) {
      next[c] = acc[c].sum * (1.0 / static_cast<double>(acc[c].count));
    }
  }
  return next;
}

double compute_inertia(const std::vector<Point3>& points,
                       const std::vector<Point3>& centroids) {
  double total = 0.0;
  for (const auto& p : points) {
    // Track the best distance directly rather than recomputing it from
    // the index nearest_centroid() returns.
    double best = std::numeric_limits<double>::max();
    for (const auto& c : centroids) {
      const double d = distance2(p, c);
      if (d < best) best = d;
    }
    total += best;
  }
  return total;
}

void validate(const std::vector<Point3>& points, std::size_t k,
              int iterations) {
  if (k == 0) throw common::ConfigError("kmeans: k must be >= 1");
  if (points.size() < k) {
    throw common::ConfigError("kmeans: need at least k points");
  }
  if (iterations < 1) {
    throw common::ConfigError("kmeans: iterations must be >= 1");
  }
}

}  // namespace

std::vector<Point3> kmeans_init(const std::vector<Point3>& points,
                                std::size_t k) {
  std::vector<Point3> centroids;
  centroids.reserve(k);
  const std::size_t stride = points.size() / k;
  for (std::size_t c = 0; c < k; ++c) centroids.push_back(points[c * stride]);
  return centroids;
}

std::size_t nearest_centroid(const Point3& p,
                             const std::vector<Point3>& centroids) {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    const double d = distance2(p, centroids[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

KMeansResult kmeans_serial(const std::vector<Point3>& points, std::size_t k,
                           int iterations) {
  validate(points, k, iterations);
  std::vector<Point3> centroids = kmeans_init(points, k);
  for (int it = 0; it < iterations; ++it) {
    std::vector<ClusterAccum> acc(k);
    for (const auto& p : points) {
      acc[nearest_centroid(p, centroids)].add(p);
    }
    centroids = update_centroids(centroids, acc);
  }
  return {centroids, compute_inertia(points, centroids), iterations};
}

KMeansResult kmeans_threaded(common::ThreadPool& pool,
                             const std::vector<Point3>& points,
                             std::size_t k, int iterations) {
  validate(points, k, iterations);
  std::vector<Point3> centroids = kmeans_init(points, k);
  const std::size_t shards = pool.size();
  const std::size_t chunk = (points.size() + shards - 1) / shards;
  for (int it = 0; it < iterations; ++it) {
    std::vector<std::vector<ClusterAccum>> partials(
        shards, std::vector<ClusterAccum>(k));
    pool.parallel_for(shards, [&](std::size_t s) {
      const std::size_t lo = s * chunk;
      const std::size_t hi = std::min(points.size(), lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        partials[s][nearest_centroid(points[i], centroids)].add(points[i]);
      }
    });
    std::vector<ClusterAccum> acc(k);
    for (const auto& partial : partials) {
      for (std::size_t c = 0; c < k; ++c) acc[c].merge(partial[c]);
    }
    centroids = update_centroids(centroids, acc);
  }
  return {centroids, compute_inertia(points, centroids), iterations};
}

KMeansResult kmeans_mapreduce(common::ThreadPool& pool,
                              const std::vector<Point3>& points,
                              std::size_t k, int iterations,
                              std::size_t map_tasks,
                              std::size_t reduce_tasks) {
  validate(points, k, iterations);
  std::vector<Point3> centroids = kmeans_init(points, k);

  using Pair = std::pair<std::size_t, ClusterAccum>;
  for (int it = 0; it < iterations; ++it) {
    mapreduce::MrJob<Point3, std::size_t, ClusterAccum, Pair> job;
    job.map_tasks = map_tasks;
    job.reduce_tasks = reduce_tasks;
    job.pair_bytes = static_cast<std::size_t>(kEmitRecordBytes);
    job.mapper = [&centroids](const Point3& p,
                              mapreduce::Emitter<std::size_t, ClusterAccum>&
                                  out) {
      out.emplace(nearest_centroid(p, centroids), p, 1);
    };
    job.combiner = [](const std::size_t&,
                      const std::vector<ClusterAccum>& vs) {
      ClusterAccum merged;
      for (const auto& v : vs) merged.merge(v);
      return merged;
    };
    job.reducer = [](const std::size_t& c,
                     const std::vector<ClusterAccum>& vs) {
      ClusterAccum merged;
      for (const auto& v : vs) merged.merge(v);
      return Pair{c, merged};
    };
    const auto reduced = mapreduce::run_mr(pool, points, job);
    std::vector<ClusterAccum> acc(k);
    for (const auto& [c, a] : reduced) acc[c] = a;
    centroids = update_centroids(centroids, acc);
  }
  return {centroids, compute_inertia(points, centroids), iterations};
}

KMeansResult kmeans_rdd(spark::SparkEnv& env,
                        const std::vector<Point3>& points, std::size_t k,
                        int iterations, std::size_t partitions) {
  validate(points, k, iterations);
  std::vector<Point3> centroids = kmeans_init(points, k);
  auto rdd = spark::Rdd<Point3>::parallelize(env, points, partitions).cache();
  for (int it = 0; it < iterations; ++it) {
    auto assigned = rdd.map([centroids](const Point3& p) {
      ClusterAccum acc;
      acc.add(p);
      return std::pair<std::size_t, ClusterAccum>(
          nearest_centroid(p, centroids), acc);
    });
    auto merged = spark::reduce_by_key(
        assigned, [](ClusterAccum a, const ClusterAccum& b) {
          a.merge(b);
          return a;
        });
    std::vector<ClusterAccum> acc(k);
    for (const auto& [c, a] : merged.collect()) acc[c] = a;
    centroids = update_centroids(centroids, acc);
  }
  return {centroids, compute_inertia(points, centroids), iterations};
}

}  // namespace hoh::analytics
