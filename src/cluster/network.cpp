#include "cluster/network.h"

#include <algorithm>

namespace hoh::cluster {

common::Seconds NetworkModel::transfer_time(common::Bytes bytes,
                                            int concurrent_flows) const {
  const int flows = std::max(1, concurrent_flows);
  const double share = bisection_bandwidth / static_cast<double>(flows);
  const double effective = std::min(share, static_cast<double>(link_bandwidth));
  return latency + static_cast<double>(bytes) / effective;
}

common::Seconds NetworkModel::wan_transfer_time(common::Bytes bytes,
                                                common::BytesPerSec wan_bw,
                                                common::Seconds rtt) {
  return rtt + static_cast<double>(bytes) / wan_bw;
}

}  // namespace hoh::cluster
