#include "cluster/machine.h"

#include "common/error.h"

namespace hoh::cluster {

common::Seconds BootstrapCostModel::yarn_bootstrap_time(int nodes) const {
  const common::Seconds download =
      NetworkModel::wan_transfer_time(distribution_bytes, download_bandwidth);
  return download + configure_time + master_daemon_start +
         worker_daemon_start * nodes;
}

common::Seconds BootstrapCostModel::spark_bootstrap_time(int nodes) const {
  const common::Seconds download = NetworkModel::wan_transfer_time(
      distribution_bytes / 2, download_bandwidth);  // Spark tarball ~half
  return download + configure_time + spark_master_start +
         spark_worker_start * nodes;
}

common::Seconds MachineProfile::storage_transfer_time(
    StorageBackend backend, common::Bytes bytes,
    int concurrent_streams) const {
  switch (backend) {
    case StorageBackend::kLocalDisk:
      return local_disk.transfer_time(bytes, concurrent_streams);
    case StorageBackend::kLocalSsd:
      if (local_ssd.bandwidth <= 0.0) {
        throw common::ResourceError("machine '" + name + "' has no local SSD");
      }
      return local_ssd.transfer_time(bytes, concurrent_streams);
    case StorageBackend::kSharedFs:
      return shared_fs.transfer_time(bytes, concurrent_streams);
    case StorageBackend::kMemory:
      return memory.transfer_time(bytes);
  }
  throw common::ConfigError("unknown storage backend");
}

MachineProfile stampede_profile() {
  MachineProfile m;
  m.name = "stampede";
  m.node.cores = 16;
  m.node.memory_mb = 32 * 1024;
  m.node.compute_rate = 1.0;
  m.node.local_disk_bw = 90.0e6;   // SATA spinning disk
  m.node.local_ssd_bw = 0.0;
  m.node.network_bw = 7.0e9;       // FDR InfiniBand (56 Gb/s)
  m.total_nodes = 6400;

  m.shared_fs.name = "lustre-scratch";
  m.shared_fs.aggregate_bandwidth = 1.2e9;
  m.shared_fs.per_client_cap = 250.0e6;
  m.shared_fs.metadata_latency = 0.04;
  m.shared_fs.small_file_aggregate_bandwidth = 10.0e6;  // busy MDS
  m.shared_fs.background_streams = 120;  // busy production $SCRATCH

  m.local_disk.bandwidth = m.node.local_disk_bw;
  m.local_disk.op_latency = 0.008;
  m.local_disk.small_file_bandwidth = 20.0e6;  // SATA random I/O
  m.local_ssd.bandwidth = 0.0;

  m.network.link_bandwidth = m.node.network_bw;
  m.network.bisection_bandwidth = 60.0e9;
  m.network.latency = 0.0003;

  m.bootstrap.download_bandwidth = 5.5e6;   // shared campus mirror
  m.bootstrap.master_daemon_start = 10.0;
  m.bootstrap.worker_daemon_start = 2.5;

  m.scheduler_submit_latency = 1.5;
  m.job_prolog_time = 8.0;
  m.agent_bootstrap_time = 45.0;
  m.has_dedicated_hadoop = false;
  return m;
}

MachineProfile wrangler_profile() {
  MachineProfile m;
  m.name = "wrangler";
  m.node.cores = 48;
  m.node.memory_mb = 128 * 1024;
  m.node.compute_rate = 1.5;       // Haswell vs Sandy Bridge
  m.node.local_disk_bw = 450.0e6;  // flash-backed local storage
  m.node.local_ssd_bw = 450.0e6;
  m.node.network_bw = 12.0e9;      // 120 Gb/s to the flash fabric
  m.total_nodes = 96;

  m.shared_fs.name = "flash-lustre";
  m.shared_fs.aggregate_bandwidth = 6.0e9;
  m.shared_fs.per_client_cap = 800.0e6;
  m.shared_fs.metadata_latency = 0.015;
  m.shared_fs.small_file_aggregate_bandwidth = 500.0e6;  // flash-backed
  m.shared_fs.background_streams = 15;  // small data-intensive machine

  m.local_disk.bandwidth = m.node.local_disk_bw;
  m.local_disk.op_latency = 0.002;
  m.local_disk.small_file_bandwidth = 250.0e6;  // flash random I/O
  m.local_ssd.bandwidth = m.node.local_ssd_bw;
  m.local_ssd.op_latency = 0.001;
  m.local_ssd.small_file_bandwidth = 250.0e6;

  m.network.link_bandwidth = m.node.network_bw;
  m.network.bisection_bandwidth = 120.0e9;
  m.network.latency = 0.0002;

  m.bootstrap.download_bandwidth = 10.0e6;
  m.bootstrap.master_daemon_start = 7.0;
  m.bootstrap.worker_daemon_start = 1.5;

  m.scheduler_submit_latency = 1.0;
  m.job_prolog_time = 5.0;
  m.agent_bootstrap_time = 35.0;
  m.has_dedicated_hadoop = true;  // data-portal Hadoop reservation
  return m;
}

MachineProfile generic_profile(int nodes, int cores_per_node,
                               common::MemoryMb memory_mb) {
  MachineProfile m;
  m.name = "beowulf";
  m.node.cores = cores_per_node;
  m.node.memory_mb = memory_mb;
  m.node.compute_rate = 1.0;
  m.node.local_disk_bw = 150.0e6;
  m.node.network_bw = 1.0e9;
  m.total_nodes = nodes;

  m.shared_fs.name = "nfs";
  m.shared_fs.aggregate_bandwidth = 0.4e9;
  m.shared_fs.per_client_cap = 110.0e6;
  m.shared_fs.metadata_latency = 0.02;

  m.local_disk.bandwidth = m.node.local_disk_bw;
  m.network.link_bandwidth = m.node.network_bw;
  m.network.bisection_bandwidth = 8.0e9;

  m.bootstrap.download_bandwidth = 10.0e6;
  m.scheduler_submit_latency = 0.5;
  m.job_prolog_time = 2.0;
  m.agent_bootstrap_time = 10.0;
  return m;
}

int Allocation::total_cores() const {
  int total = 0;
  for (const auto& n : nodes_) total += n->spec().cores;
  return total;
}

common::MemoryMb Allocation::total_memory_mb() const {
  common::MemoryMb total = 0;
  for (const auto& n : nodes_) total += n->spec().memory_mb;
  return total;
}

std::vector<std::string> Allocation::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& n : nodes_) names.push_back(n->name());
  return names;
}

void Allocation::add(std::shared_ptr<Node> node) {
  nodes_.push_back(std::move(node));
}

bool Allocation::remove(const std::string& name) {
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if ((*it)->name() == name) {
      nodes_.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace hoh::cluster
