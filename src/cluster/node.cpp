#include "cluster/node.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::cluster {

bool Node::allocate(const ResourceRequest& req) {
  if (!fits(req)) return false;
  free_cores_ -= req.cores;
  free_memory_mb_ -= req.memory_mb;
  return true;
}

void Node::release(const ResourceRequest& req) {
  if (free_cores_ + req.cores > spec_.cores ||
      free_memory_mb_ + req.memory_mb > spec_.memory_mb) {
    throw common::StateError(common::strformat(
        "Node %s: release(%d cores, %lld MB) exceeds capacity", name_.c_str(),
        req.cores, static_cast<long long>(req.memory_mb)));
  }
  free_cores_ += req.cores;
  free_memory_mb_ += req.memory_mb;
}

}  // namespace hoh::cluster
