#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/network.h"
#include "cluster/node.h"
#include "cluster/storage.h"
#include "common/units.h"

/// \file machine.h
/// Machine profiles for the two XSEDE systems the paper evaluates on
/// (Stampede and Wrangler) plus a generic Beowulf profile, and the
/// Allocation type representing a set of nodes handed to a pilot by the
/// batch scheduler.

namespace hoh::cluster {

/// Latency model for the Mode-I Hadoop/Spark bootstrap the LRM performs:
/// download the distribution, write the *-site.xml files, start the
/// master daemons, then one round of worker daemons. Matches the steps in
/// paper SS-III-C ("the LRM downloads Hadoop and creates the necessary
/// configuration files ... HDFS and YARN are started").
struct BootstrapCostModel {
  common::Bytes distribution_bytes = 300 * common::kMiB;
  common::BytesPerSec download_bandwidth = 5.0e6;
  common::Seconds configure_time = 2.0;
  common::Seconds master_daemon_start = 8.0;      // NameNode + ResourceManager
  common::Seconds worker_daemon_start = 2.0;      // per NodeManager/DataNode
  common::Seconds spark_master_start = 5.0;       // standalone master
  common::Seconds spark_worker_start = 1.5;       // per worker
  common::Seconds teardown_time = 3.0;            // stop daemons, remove data

  /// Total Mode-I YARN bootstrap time for \p nodes nodes.
  common::Seconds yarn_bootstrap_time(int nodes) const;

  /// Total Mode-I Spark standalone bootstrap time for \p nodes nodes.
  common::Seconds spark_bootstrap_time(int nodes) const;
};

/// Full description of one HPC machine.
struct MachineProfile {
  std::string name = "generic";
  NodeSpec node;
  int total_nodes = 64;

  SharedFsModel shared_fs;
  LocalStorageModel local_disk;
  LocalStorageModel local_ssd;  // bandwidth 0 when absent
  MemoryStorageModel memory;
  NetworkModel network;
  BootstrapCostModel bootstrap;

  /// Batch system behaviour.
  common::Seconds scheduler_submit_latency = 1.0;  // sbatch/qsub round trip
  common::Seconds job_prolog_time = 5.0;           // node setup before payload
  common::Seconds job_epilog_time = 2.0;

  /// Time for the plain RADICAL-Pilot agent to come up once the batch job
  /// starts (load environment, start agent components, connect to the
  /// state store).
  common::Seconds agent_bootstrap_time = 40.0;

  /// True when the machine offers a dedicated, persistent Hadoop
  /// environment (Wrangler's data-portal reservation) enabling Mode II.
  bool has_dedicated_hadoop = false;

  /// Storage model lookup for a backend on this machine.
  common::Seconds storage_transfer_time(StorageBackend backend,
                                        common::Bytes bytes,
                                        int concurrent_streams) const;
};

/// TACC Stampede: 16-core Sandy Bridge nodes, 32 GB, Lustre $SCRATCH,
/// spinning local disks, SLURM. (Paper SS-IV: "On Stampede every node has
/// 16 cores and 32 GB of memory".)
MachineProfile stampede_profile();

/// TACC Wrangler: 48-core Haswell nodes, 128 GB, flash-based storage,
/// dedicated Cloudera Hadoop reservation available (Mode II).
MachineProfile wrangler_profile();

/// A small generic Beowulf cluster for tests and the quickstart example.
MachineProfile generic_profile(int nodes = 8, int cores_per_node = 8,
                               common::MemoryMb memory_mb = 16 * 1024);

/// A set of nodes granted to one batch job / pilot.
class Allocation {
 public:
  Allocation() = default;
  explicit Allocation(std::vector<std::shared_ptr<Node>> nodes)
      : nodes_(std::move(nodes)) {}

  const std::vector<std::shared_ptr<Node>>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }
  std::size_t size() const { return nodes_.size(); }

  int total_cores() const;
  common::MemoryMb total_memory_mb() const;

  /// Names of the allocated nodes (the simulated $SLURM_NODELIST /
  /// $PBS_NODEFILE contents the LRM parses).
  std::vector<std::string> node_names() const;

  /// Elastic pilots append nodes granted by incremental batch jobs.
  void add(std::shared_ptr<Node> node);

  /// Removes the named node (a drained node being returned to the batch
  /// system); returns false when no node of that name is held.
  bool remove(const std::string& name);

 private:
  std::vector<std::shared_ptr<Node>> nodes_;
};

}  // namespace hoh::cluster
