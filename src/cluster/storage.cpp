#include "cluster/storage.h"

#include <algorithm>

namespace hoh::cluster {

std::string to_string(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kLocalDisk:
      return "local-disk";
    case StorageBackend::kLocalSsd:
      return "local-ssd";
    case StorageBackend::kSharedFs:
      return "shared-fs";
    case StorageBackend::kMemory:
      return "memory";
  }
  return "?";
}

common::Seconds LocalStorageModel::transfer_time(common::Bytes bytes,
                                                 int streams_on_node) const {
  const int streams = std::max(1, streams_on_node);
  const double effective = bandwidth / static_cast<double>(streams);
  return op_latency + static_cast<double>(bytes) / effective;
}

common::Seconds SharedFsModel::transfer_time(common::Bytes bytes,
                                             int total_streams) const {
  const int streams = std::max(1, total_streams) + std::max(0, background_streams);
  const double share = aggregate_bandwidth / static_cast<double>(streams);
  const double effective = std::min(share, per_client_cap);
  return metadata_latency + static_cast<double>(bytes) / effective;
}

common::Seconds MemoryStorageModel::transfer_time(common::Bytes bytes) const {
  return static_cast<double>(bytes) / bandwidth;
}

}  // namespace hoh::cluster
