#pragma once

#include <string>

#include "cluster/resource_spec.h"

/// \file node.h
/// Mutable per-node resource ledger. Both the RADICAL-Pilot agent
/// scheduler and the YARN NodeManagers draw (cores, memory) slots from
/// Node objects, so double-booking across the two systems is impossible
/// by construction.

namespace hoh::cluster {

/// One compute node with free/used core and memory accounting.
class Node {
 public:
  Node(std::string name, NodeSpec spec)
      : name_(std::move(name)),
        spec_(spec),
        free_cores_(spec.cores),
        free_memory_mb_(spec.memory_mb) {}

  const std::string& name() const { return name_; }
  const NodeSpec& spec() const { return spec_; }

  int free_cores() const { return free_cores_; }
  common::MemoryMb free_memory_mb() const { return free_memory_mb_; }
  int used_cores() const { return spec_.cores - free_cores_; }
  common::MemoryMb used_memory_mb() const {
    return spec_.memory_mb - free_memory_mb_;
  }

  /// True if the request fits in the current free capacity.
  bool fits(const ResourceRequest& req) const {
    return req.cores <= free_cores_ && req.memory_mb <= free_memory_mb_;
  }

  /// Claims the request; returns false (and changes nothing) if it does
  /// not fit.
  bool allocate(const ResourceRequest& req);

  /// Returns a previous allocation. Throws StateError on over-release.
  void release(const ResourceRequest& req);

  /// Compute slowdown multiplier (1.0 = nominal). The FailureInjector's
  /// slow-node episodes raise this; execution models scale task wall
  /// times by it.
  double speed_factor() const { return speed_factor_; }
  void set_speed_factor(double f) { speed_factor_ = f < 1.0 ? 1.0 : f; }

 private:
  std::string name_;
  NodeSpec spec_;
  int free_cores_;
  common::MemoryMb free_memory_mb_;
  double speed_factor_ = 1.0;
};

}  // namespace hoh::cluster
