#pragma once

#include <string>

#include "common/units.h"

/// \file storage.h
/// Analytic storage-time models. The paper's Fig. 6 result — RP-YARN
/// beating plain RP by ~13 % on average — is attributed to YARN/HDFS using
/// node-local disks while plain RP reads and writes through the shared
/// Lustre filesystem. These models capture exactly the two effects that
/// matter for that comparison:
///   1. per-operation latency (Lustre metadata RPCs vs. local open), and
///   2. bandwidth under concurrency (local disks scale per node; a shared
///      parallel filesystem divides aggregate bandwidth across clients).

namespace hoh::cluster {

/// Which backend a task's I/O goes through.
enum class StorageBackend {
  kLocalDisk,   // node-local spinning disk
  kLocalSsd,    // node-local flash (configuration-template extension)
  kSharedFs,    // Lustre-style parallel filesystem
  kMemory,      // in-memory (Spark RDD cache / tmpfs)
};

std::string to_string(StorageBackend backend);

/// Node-local storage: each node owns its full bandwidth; only streams on
/// the same node share it.
struct LocalStorageModel {
  common::BytesPerSec bandwidth = 100.0e6;
  common::Seconds op_latency = 0.005;

  /// Effective bandwidth for many-small-file random I/O (shuffle spill
  /// files); spinning disks degrade badly, flash barely.
  common::BytesPerSec small_file_bandwidth = 25.0e6;

  /// Time to move \p bytes with \p streams_on_node concurrent streams on
  /// the same node.
  common::Seconds transfer_time(common::Bytes bytes,
                                int streams_on_node = 1) const;
};

/// Shared parallel filesystem (Lustre/GPFS-style): aggregate bandwidth is
/// divided across all concurrent client streams cluster-wide, each stream
/// additionally capped by a per-client limit, and every operation pays a
/// metadata round-trip.
struct SharedFsModel {
  std::string name = "lustre";
  common::BytesPerSec aggregate_bandwidth = 1.6e9;
  common::BytesPerSec per_client_cap = 300.0e6;
  common::Seconds metadata_latency = 0.03;

  /// Aggregate bandwidth the filesystem can sustain for many-small-file
  /// random I/O (a busy Lustre MDS throttles this far below streaming
  /// rates — the paper's "many small files ... random data access" case).
  common::BytesPerSec small_file_aggregate_bandwidth = 50.0e6;

  /// Streams owned by *other users'* jobs on the production machine; a
  /// parallel filesystem is machine-wide shared infrastructure, so our
  /// tasks only ever get aggregate/(ours + background) each. Node-local
  /// disks have no equivalent term — that asymmetry is the Fig. 6
  /// local-disk advantage.
  int background_streams = 0;

  /// Time to move \p bytes when \p total_streams of *our* clients are
  /// active (background load is added on top).
  common::Seconds transfer_time(common::Bytes bytes,
                                int total_streams = 1) const;
};

/// Memory tier: effectively bandwidth-limited copies, no per-op latency
/// worth modelling at middleware scale.
struct MemoryStorageModel {
  common::BytesPerSec bandwidth = 8.0e9;

  common::Seconds transfer_time(common::Bytes bytes) const;
};

}  // namespace hoh::cluster
