#pragma once

#include "common/units.h"

/// \file network.h
/// Interconnect model. Used for MapReduce shuffle traffic between nodes,
/// HDFS replication pipelines and wide-area staging.

namespace hoh::cluster {

/// Simple shared-link interconnect: a per-link bandwidth, a per-message
/// latency, and a cluster-wide bisection cap that concurrent flows share.
struct NetworkModel {
  common::BytesPerSec link_bandwidth = 1.0e9;       // per NIC
  common::BytesPerSec bisection_bandwidth = 40.0e9; // whole fabric
  common::Seconds latency = 0.0005;                 // per message

  /// Time for one flow of \p bytes when \p concurrent_flows flows share
  /// the fabric.
  common::Seconds transfer_time(common::Bytes bytes,
                                int concurrent_flows = 1) const;

  /// Wide-area transfer (e.g. downloading the Hadoop distribution from an
  /// external mirror): bandwidth given explicitly.
  static common::Seconds wan_transfer_time(common::Bytes bytes,
                                           common::BytesPerSec wan_bw,
                                           common::Seconds rtt = 0.05);
};

}  // namespace hoh::cluster
