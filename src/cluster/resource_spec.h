#pragma once

#include <string>

#include "common/units.h"

/// \file resource_spec.h
/// Value types describing hardware capacity and resource requests.

namespace hoh::cluster {

/// Static description of one compute node.
struct NodeSpec {
  int cores = 16;
  common::MemoryMb memory_mb = 32 * 1024;

  /// Relative compute throughput of one core (1.0 = Stampede Sandy
  /// Bridge-era baseline). Workload cost models divide abstract work units
  /// by cores * compute_rate.
  double compute_rate = 1.0;

  /// Sequential bandwidth of the node-local disk (0 = diskless node).
  common::BytesPerSec local_disk_bw = 100.0e6;

  /// Bandwidth of a node-local SSD/flash tier (0 = none). Used by the
  /// shuffle configuration templates (paper SS-V).
  common::BytesPerSec local_ssd_bw = 0.0;

  /// NIC bandwidth towards the cluster interconnect.
  common::BytesPerSec network_bw = 1.0e9;
};

/// A resource request in the (cores, memory) space the paper's YARN-aware
/// scheduler allocates in.
struct ResourceRequest {
  int cores = 1;
  common::MemoryMb memory_mb = 1024;

  friend bool operator==(const ResourceRequest&,
                         const ResourceRequest&) = default;
};

}  // namespace hoh::cluster
