#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "net/message.h"

/// \file transport.h
/// The message boundary every cross-component interaction crosses
/// (DESIGN.md §14). Components register named endpoints; peers address
/// them by name and exchange Envelopes (typed packed payloads).
///
/// Delivery is synchronous at the call site in every implementation:
/// call()/send() return only after the destination handler ran (and,
/// for call(), returned its reply). That contract is what makes the
/// two implementations digest-identical — the simulation's event order
/// is a function of the call sequence, not of the transport:
///
///   InProcessTransport  — dispatches the handler directly on the
///     caller's stack, zero copies. The default; byte-for-byte the
///     behavior the stack had when these were plain method calls.
///   SocketTransport     — packs each envelope into a versioned frame
///     and round-trips the bytes through a real loopback TCP
///     connection serviced by an epoll reactor thread before (and
///     after) dispatching the same handler. Same semantics, real wire.
///
/// Handlers run on the caller's thread in both modes, so they may touch
/// the simulation engine exactly as the direct calls they replaced did.

namespace hoh::net {

struct TransportStats {
  std::uint64_t calls = 0;        // request/reply exchanges
  std::uint64_t sends = 0;        // one-way messages
  std::uint64_t bytes_sent = 0;   // socket mode only
  std::uint64_t bytes_received = 0;
  std::uint64_t reconnects = 0;
};

class Transport {
 public:
  /// Request handler: consumes one envelope, returns the reply (an Ack
  /// envelope for interactions that carry no answer).
  using Handler = std::function<Envelope(const Envelope&)>;

  virtual ~Transport() = default;

  /// Registers \p handler under \p endpoint; re-registering replaces the
  /// previous handler (a respawned component takes over its name).
  virtual void register_endpoint(const std::string& endpoint,
                                 Handler handler) = 0;
  virtual void unregister_endpoint(const std::string& endpoint) = 0;
  virtual bool has_endpoint(const std::string& endpoint) const = 0;

  /// Request/reply: delivers \p request to the endpoint's handler and
  /// returns its reply. Throws NotFoundError for an unknown endpoint.
  virtual Envelope call(const std::string& endpoint,
                        const Envelope& request) = 0;

  /// One-way: delivers \p message; the handler's reply is discarded.
  virtual void send(const std::string& endpoint, const Envelope& message) = 0;

  /// "in-process" or "socket" (plan key "transport").
  virtual const char* mode() const = 0;

  virtual TransportStats stats() const = 0;
};

/// Typed sugar: pack, route, unpack.
template <typename Reply, typename Request>
Reply call(Transport& t, const std::string& endpoint, const Request& req) {
  return open_envelope<Reply>(t.call(endpoint, make_envelope(req)));
}

template <typename Request>
void send(Transport& t, const std::string& endpoint, const Request& req) {
  t.send(endpoint, make_envelope(req));
}

/// Direct dispatch on the caller's stack; the envelope is handed to the
/// handler by reference (zero-copy).
class InProcessTransport : public Transport {
 public:
  void register_endpoint(const std::string& endpoint, Handler handler) override;
  void unregister_endpoint(const std::string& endpoint) override;
  bool has_endpoint(const std::string& endpoint) const override;
  Envelope call(const std::string& endpoint, const Envelope& request) override;
  void send(const std::string& endpoint, const Envelope& message) override;
  const char* mode() const override { return "in-process"; }
  TransportStats stats() const override;

 private:
  /// Copies the handler out under the lock; the dispatch itself runs
  /// unlocked so handlers may call back into the transport.
  Handler resolve(const std::string& endpoint) const;

  mutable common::Mutex mu_;
  std::map<std::string, Handler> endpoints_ HOH_GUARDED_BY(mu_);
  mutable TransportStats stats_ HOH_GUARDED_BY(mu_);
};

}  // namespace hoh::net
