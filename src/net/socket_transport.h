#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "common/thread_annotations.h"
#include "net/ring_buffer.h"
#include "net/transport.h"

/// \file socket_transport.h
/// The socket-backed Transport (DESIGN.md §14): every envelope is packed
/// into a versioned frame and round-trips a real loopback TCP connection
/// before its handler runs. An epoll reactor thread owns the file
/// descriptors — non-blocking accept/read/write, ring-buffered frame
/// reassembly per peer, per-peer write queues drained on EPOLLOUT — and
/// hands complete inbound frames back to the calling thread, which
/// blocks on a condition variable until its frame arrives.
///
/// call() therefore traverses the wire twice (request over, reply back)
/// and send() once, while the handler itself still executes on the
/// caller's thread — the same synchronous-at-call-site contract as
/// InProcessTransport, which is what makes the two modes produce
/// byte-identical simulation digests while this one genuinely exercises
/// framing, partial reads, backpressure and reconnect.
///
/// A torn connection (peer reset, kill_connection() in tests) is
/// repaired transparently: the in-flight frame is retransmitted on a
/// fresh connection dialed under the PR 4 RetryPolicy (wall-clock
/// exponential backoff, seeded jitter), and stats().reconnects counts
/// the repairs.

namespace hoh::net {

struct SocketTransportConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral port

  /// Redial budget for torn connections. Wall-clock, not simulated:
  /// the reactor lives outside the simulation engine.
  common::RetryPolicy reconnect{
      .max_attempts = 8,
      .base_backoff = 0.01,
      .multiplier = 2.0,
      .max_backoff = 0.5,
      .jitter = 0.1,
      .attempt_timeout = 0.0,
  };

  /// Seed for the reconnect backoff jitter.
  std::uint64_t reconnect_seed = 1;
};

class SocketTransport : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  void register_endpoint(const std::string& endpoint, Handler handler) override;
  void unregister_endpoint(const std::string& endpoint) override;
  bool has_endpoint(const std::string& endpoint) const override;
  Envelope call(const std::string& endpoint, const Envelope& request) override;
  void send(const std::string& endpoint, const Envelope& message) override;
  const char* mode() const override { return "socket"; }
  TransportStats stats() const override;

  /// The port the listener actually bound (resolves port = 0).
  std::uint16_t port() const { return port_; }

  /// Test hook: tears the live connection down mid-run so the next
  /// exchange exercises the reconnect/backoff path.
  void kill_connection();

 private:
  /// Internal wire body wrapped around every envelope:
  ///   seq u64 | kind u8 | endpoint str | payload bytes
  enum WireKind : std::uint8_t { kRequest = 0, kOneWay = 1, kReply = 2 };

  /// One TCP peer the reactor services. Exactly two exist when the
  /// loopback connection is up: the dialed (client) side and the
  /// accepted (server) side.
  struct Peer {
    int fd = -1;
    RingBuffer in;
    std::deque<std::vector<std::uint8_t>> out;
    std::size_t out_offset = 0;  // bytes of out.front() already written
    bool want_write = false;     // EPOLLOUT currently armed
  };

  void open_listener();
  void start_reactor();
  /// Dials a fresh loopback connection (RetryPolicy backoff) and waits
  /// until the reactor accepted it. Throws ResourceError when the budget
  /// is exhausted.
  void connect_with_backoff();

  /// Sends one framed wire message via \p peer_slot (0 = client side,
  /// 1 = server side) and blocks until the reactor delivers the next
  /// complete inbound frame; transparently reconnects and retransmits.
  /// Returns the decoded wire body (seq, kind, endpoint, envelope).
  struct WireMessage {
    std::uint64_t seq = 0;
    std::uint8_t kind = kRequest;
    std::string endpoint;
    Envelope envelope;
  };
  WireMessage wire_transfer(int peer_slot, const WireMessage& msg);

  static std::vector<std::uint8_t> encode_wire(const WireMessage& msg);
  static WireMessage decode_wire(const Envelope& frame);

  /// Dispatches a decoded request to its registered handler.
  Envelope dispatch(const std::string& endpoint, const Envelope& request);

  // --- reactor side ---
  void reactor_main();
  void reactor_accept();
  bool reactor_read(int slot);   // false = connection died
  bool reactor_write(int slot);  // false = connection died
  void reactor_drop_connection();
  void arm_writer(int slot, bool on) HOH_REQUIRES(mu_);
  void wake_reactor();

  SocketTransportConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::map<std::string, Handler> endpoints_ HOH_GUARDED_BY(mu_);
  mutable TransportStats stats_ HOH_GUARDED_BY(mu_);
  /// peers_[0] = dialed side, peers_[1] = accepted side.
  Peer peers_[2] HOH_GUARDED_BY(mu_);
  std::deque<Envelope> inbound_ HOH_GUARDED_BY(mu_);
  bool connected_ HOH_GUARDED_BY(mu_) = false;
  bool conn_error_ HOH_GUARDED_BY(mu_) = false;
  bool stopping_ HOH_GUARDED_BY(mu_) = false;
  int pending_client_fd_ HOH_GUARDED_BY(mu_) = -1;
  std::uint64_t next_seq_ HOH_GUARDED_BY(mu_) = 1;

  common::Rng reconnect_rng_;
  std::thread reactor_;
};

}  // namespace hoh::net
