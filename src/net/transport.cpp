#include "net/transport.h"

#include <utility>

#include "common/error.h"

namespace hoh::net {

void InProcessTransport::register_endpoint(const std::string& endpoint,
                                           Handler handler) {
  common::MutexLock lock(mu_);
  endpoints_[endpoint] = std::move(handler);
}

void InProcessTransport::unregister_endpoint(const std::string& endpoint) {
  common::MutexLock lock(mu_);
  endpoints_.erase(endpoint);
}

bool InProcessTransport::has_endpoint(const std::string& endpoint) const {
  common::MutexLock lock(mu_);
  return endpoints_.count(endpoint) != 0;
}

Transport::Handler InProcessTransport::resolve(
    const std::string& endpoint) const {
  common::MutexLock lock(mu_);
  auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    throw common::NotFoundError("transport: no endpoint \"" + endpoint +
                                "\"");
  }
  return it->second;
}

Envelope InProcessTransport::call(const std::string& endpoint,
                                  const Envelope& request) {
  Handler handler = resolve(endpoint);
  {
    common::MutexLock lock(mu_);
    ++stats_.calls;
  }
  return handler(request);
}

void InProcessTransport::send(const std::string& endpoint,
                              const Envelope& message) {
  Handler handler = resolve(endpoint);
  {
    common::MutexLock lock(mu_);
    ++stats_.sends;
  }
  handler(message);
}

TransportStats InProcessTransport::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

}  // namespace hoh::net
