#include "net/socket_util.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/error.h"

namespace hoh::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw common::ResourceError(what + ": " + std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw common::ConfigError("bad host address: " + host);
  }
  return addr;
}

}  // namespace

int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd, 16) != 0) throw_errno("listen()");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

int tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

int tcp_connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string what =
        "connect(" + host + ":" + std::to_string(port) + ")";
    ::close(fd);
    throw_errno(what);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void write_frame(int fd, const Envelope& envelope) {
  const std::vector<std::uint8_t> bytes = encode_frame(envelope);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("write_frame");
  }
}

bool read_frame(int fd, RingBuffer& buf, Envelope* out) {
  std::uint8_t chunk[4096];
  for (;;) {
    if (buf.size() >= kFrameHeaderBytes) {
      // Copy the buffered prefix out flat for the incremental decoder.
      std::vector<std::uint8_t> flat(buf.size());
      buf.peek(flat.data(), flat.size());
      const std::size_t used =
          try_decode_frame(flat.data(), flat.size(), out);
      if (used > 0) {
        buf.consume(used);
        return true;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buf.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      if (buf.empty()) return false;  // orderly EOF between frames
      throw common::ResourceError("read_frame: EOF mid-frame");
    }
    throw_errno("read_frame");
  }
}

void close_socket(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace hoh::net
