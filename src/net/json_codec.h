#pragma once

#include "common/json.h"
#include "net/pack.h"

/// \file json_codec.h
/// Binary encoding for common::Json documents crossing the transport
/// (store ingest, submissions). Numbers travel as their IEEE-754 bit
/// pattern, so a document survives the wire bit-exactly — unlike a
/// dump()/parse() text round trip, whose %.10g formatting would perturb
/// computed durations and with them the simulation's event timing.
///
/// Layout: tag u8 (0 null, 1 false, 2 true, 3 number, 4 string,
/// 5 array, 6 object), then the payload; arrays and objects carry a u32
/// count. Object keys are written in map order (sorted), so equal
/// documents have equal encodings.

namespace hoh::net {

void pack_json(Packer& p, const common::Json& doc);

/// Throws CodecError on truncation, an unknown tag, or nesting deeper
/// than 64 levels (a corrupt count field must not recurse unboundedly).
common::Json unpack_json(Unpacker& u);

}  // namespace hoh::net
