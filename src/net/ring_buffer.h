#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

/// \file ring_buffer.h
/// Growable circular byte buffer for frame reassembly: the reactor
/// appends whatever recv() returned and the frame parser peeks at the
/// front until a complete frame is present, so partial reads cost no
/// shifting and no per-read allocation once the buffer is warm.

namespace hoh::net {

class RingBuffer {
 public:
  explicit RingBuffer(std::size_t initial_capacity = 4096)
      : buf_(round_up(initial_capacity)) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void append(const std::uint8_t* data, std::size_t n) {
    reserve(count_ + n);
    const std::size_t cap = buf_.size();
    std::size_t tail = (head_ + count_) & (cap - 1);
    const std::size_t first = std::min(n, cap - tail);
    std::memcpy(buf_.data() + tail, data, first);
    if (n > first) std::memcpy(buf_.data(), data + first, n - first);
    count_ += n;
  }

  /// Copies min(n, size()) front bytes into \p out without consuming;
  /// returns the number copied.
  std::size_t peek(std::uint8_t* out, std::size_t n) const {
    n = std::min(n, count_);
    const std::size_t cap = buf_.size();
    const std::size_t first = std::min(n, cap - head_);
    std::memcpy(out, buf_.data() + head_, first);
    if (n > first) std::memcpy(out + first, buf_.data(), n - first);
    return n;
  }

  /// Drops min(n, size()) front bytes.
  void consume(std::size_t n) {
    n = std::min(n, count_);
    head_ = (head_ + n) & (buf_.size() - 1);
    count_ -= n;
    if (count_ == 0) head_ = 0;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t cap = 64;
    while (cap < n) cap <<= 1;
    return cap;
  }

  void reserve(std::size_t needed) {
    if (needed <= buf_.size()) return;
    std::vector<std::uint8_t> bigger(round_up(needed));
    const std::size_t n = peek(bigger.data(), count_);
    buf_ = std::move(bigger);
    head_ = 0;
    count_ = n;
  }

  std::vector<std::uint8_t> buf_;  // capacity is a power of two
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace hoh::net
