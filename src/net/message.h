#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/pack.h"

/// \file message.h
/// The typed wire vocabulary of the control plane (DESIGN.md §14). Every
/// cross-component interaction — RM↔NM container traffic, store watch
/// fan-out and ingest, PilotManager↔Agent commands, gateway↔UnitManager
/// submission, and the hohnode multi-process roles — is one of these
/// structs, packed with the net::Packer codec behind a versioned frame
/// header:
///
///   FrameHeader  := magic u32 ("HOH1") | version u16 | type u16
///                 | length u32 (payload bytes)
///   frame        := FrameHeader | payload[length]
///
/// A frame with the wrong magic or version, or a length above
/// kMaxFrameBytes, is rejected before any payload byte is read, so a
/// corrupt or hostile stream can never drive an allocation from its
/// length field. Payload evolution bumps kWireVersion; peers reject
/// versions they do not speak (no silent reinterpretation).

namespace hoh::net {

inline constexpr std::uint32_t kFrameMagic = 0x484F4831;  // "HOH1"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Upper bound on one payload; a length field above this is corruption,
/// not a big message (the largest real payload is a unit document).
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

enum class MsgType : std::uint16_t {
  kAck = 1,
  // RM <-> NM container plane.
  kAllocateRequest = 10,
  kAllocateReply = 11,
  kLaunchRequest = 12,
  kContainerRunning = 13,
  kReleaseRequest = 14,
  kNodeProbe = 15,
  kNodeStatus = 16,
  // State-store plane (watch fan-out + unit ingest).
  kWatchNotify = 30,
  kStoreIngest = 31,
  // PilotManager <-> Agent control.
  kAgentCommand = 40,
  kAgentEvent = 41,
  // Gateway -> UnitManager submission.
  kSubmitRequest = 50,
  kSubmitReply = 51,
  // hohnode multi-process roles.
  kHello = 60,
  kUnitAssign = 61,
  kUnitResult = 62,
  kBye = 63,
};

const char* to_string(MsgType type);

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kWireVersion;
  std::uint16_t type = 0;
  std::uint32_t length = 0;

  void pack(Packer& p) const {
    p.u32(magic);
    p.u16(version);
    p.u16(type);
    p.u32(length);
  }

  /// Validates magic/version/length; throws CodecError on any mismatch.
  static FrameHeader unpack(Unpacker& u);
};

/// A type-tagged packed payload — what transports move. The payload is
/// already codec bytes, so routing never needs to understand it.
struct Envelope {
  MsgType type = MsgType::kAck;
  std::vector<std::uint8_t> payload;
};

/// --- message structs -----------------------------------------------
/// Each struct packs/unpacks itself field-by-field; unpack consumes the
/// whole payload (expect_done), so a frame whose length disagrees with
/// its message is a CodecError, never a silent partial read.

struct Ack {
  static constexpr MsgType kType = MsgType::kAck;
  void pack(Packer&) const {}
  static Ack unpack(Unpacker& u) {
    u.expect_done();
    return {};
  }
};

/// RM -> NM: reserve resources and create the container record.
struct AllocateRequest {
  static constexpr MsgType kType = MsgType::kAllocateRequest;
  std::string container_id;
  std::string app_id;
  std::string node;
  std::int64_t memory_mb = 0;
  std::int64_t vcores = 0;
  bool is_am = false;

  void pack(Packer& p) const;
  static AllocateRequest unpack(Unpacker& u);
};

struct AllocateReply {
  static constexpr MsgType kType = MsgType::kAllocateReply;
  bool ok = false;
  std::string node;

  void pack(Packer& p) const;
  static AllocateReply unpack(Unpacker& u);
};

/// RM -> NM: start an allocated container. The NM answers with an Ack
/// immediately; once the launch latency elapses it sends
/// ContainerRunning back to the RM's event endpoint with the same
/// correlation id (callbacks do not cross the wire).
struct LaunchRequest {
  static constexpr MsgType kType = MsgType::kLaunchRequest;
  std::string node;
  std::string container_id;
  std::uint64_t correlation = 0;

  void pack(Packer& p) const;
  static LaunchRequest unpack(Unpacker& u);
};

struct ContainerRunning {
  static constexpr MsgType kType = MsgType::kContainerRunning;
  std::string container_id;
  std::uint64_t correlation = 0;

  void pack(Packer& p) const;
  static ContainerRunning unpack(Unpacker& u);
};

/// RM -> NM: finish a container (final_state is a yarn::ContainerState).
struct ReleaseRequest {
  static constexpr MsgType kType = MsgType::kReleaseRequest;
  std::string node;
  std::string container_id;
  std::uint8_t final_state = 0;

  void pack(Packer& p) const;
  static ReleaseRequest unpack(Unpacker& u);
};

/// RM liveness monitor -> NM: heartbeat probe.
struct NodeProbe {
  static constexpr MsgType kType = MsgType::kNodeProbe;
  std::string node;

  void pack(Packer& p) const;
  static NodeProbe unpack(Unpacker& u);
};

struct NodeStatus {
  static constexpr MsgType kType = MsgType::kNodeStatus;
  std::string node;
  double last_heartbeat = 0.0;
  bool alive = false;

  void pack(Packer& p) const;
  static NodeStatus unpack(Unpacker& u);
};

/// Store -> watcher: one watch delivery (event_type is a
/// pilot::WatchEventType).
struct WatchNotify {
  static constexpr MsgType kType = MsgType::kWatchNotify;
  std::uint64_t watcher_id = 0;
  std::uint8_t event_type = 0;
  std::string bucket;
  std::string key;

  void pack(Packer& p) const;
  static WatchNotify unpack(Unpacker& u);
};

/// UnitManager -> store: the U.2 handoff (unit document put + agent
/// queue push) as one message. The document travels as packed binary
/// Json (json_codec.h) so its numbers cross the wire bit-exactly.
struct StoreIngest {
  static constexpr MsgType kType = MsgType::kStoreIngest;
  std::string collection;
  std::string unit_id;
  std::string queue;  // empty = no queue push
  std::vector<std::uint8_t> document;

  void pack(Packer& p) const;
  static StoreIngest unpack(Unpacker& u);
};

/// PilotManager -> Agent lifecycle command.
struct AgentCommand {
  static constexpr MsgType kType = MsgType::kAgentCommand;
  enum Op : std::uint8_t { kStart = 0, kStop = 1, kStopFailUnits = 2 };
  std::string pilot_id;
  std::uint8_t op = kStart;

  void pack(Packer& p) const;
  static AgentCommand unpack(Unpacker& u);
};

/// Agent -> PilotManager event (today only "active").
struct AgentEvent {
  static constexpr MsgType kType = MsgType::kAgentEvent;
  enum Kind : std::uint8_t { kActive = 0 };
  std::string pilot_id;
  std::uint8_t kind = kActive;

  void pack(Packer& p) const;
  static AgentEvent unpack(Unpacker& u);
};

/// Gateway -> UnitManager: submit one unit description (packed binary
/// Json of the same document form the store holds).
struct SubmitRequest {
  static constexpr MsgType kType = MsgType::kSubmitRequest;
  std::string tenant_id;
  std::vector<std::uint8_t> description;

  void pack(Packer& p) const;
  static SubmitRequest unpack(Unpacker& u);
};

struct SubmitReply {
  static constexpr MsgType kType = MsgType::kSubmitReply;
  std::string unit_id;

  void pack(Packer& p) const;
  static SubmitReply unpack(Unpacker& u);
};

/// hohnode: role announcement on connect.
struct Hello {
  static constexpr MsgType kType = MsgType::kHello;
  enum Role : std::uint8_t { kAgent = 0, kSubmitter = 1 };
  std::uint8_t role = kAgent;
  std::string name;
  std::int64_t cores = 0;  // agent capacity; 0 for submitters

  void pack(Packer& p) const;
  static Hello unpack(Unpacker& u);
};

/// hohnode rm -> agent: run one unit.
struct UnitAssign {
  static constexpr MsgType kType = MsgType::kUnitAssign;
  std::string unit_id;
  std::string name;
  double duration = 0.0;

  void pack(Packer& p) const;
  static UnitAssign unpack(Unpacker& u);
};

/// hohnode agent -> rm: unit finished. Also submitter -> rm inside
/// SubmitRequest-free hohnode flow.
struct UnitResult {
  static constexpr MsgType kType = MsgType::kUnitResult;
  std::string unit_id;
  std::string name;
  bool ok = false;

  void pack(Packer& p) const;
  static UnitResult unpack(Unpacker& u);
};

/// hohnode: orderly goodbye (submitter done; rm tells agents to exit).
struct Bye {
  static constexpr MsgType kType = MsgType::kBye;
  void pack(Packer&) const {}
  static Bye unpack(Unpacker& u) {
    u.expect_done();
    return {};
  }
};

/// --- envelope / frame helpers --------------------------------------

template <typename M>
Envelope make_envelope(const M& m) {
  Packer p;
  m.pack(p);
  return Envelope{M::kType, p.take()};
}

/// Unpacks a typed message out of an envelope; CodecError on a type
/// mismatch or malformed payload.
template <typename M>
M open_envelope(const Envelope& e) {
  if (e.type != M::kType) {
    throw CodecError(std::string("envelope type mismatch: expected ") +
                     to_string(M::kType) + ", got " + to_string(e.type));
  }
  Unpacker u(e.payload);
  return M::unpack(u);
}

/// header + payload as one contiguous byte string.
std::vector<std::uint8_t> encode_frame(const Envelope& e);

/// Incremental decode: returns the number of bytes consumed from the
/// front of [data, data+size) and fills \p out, or 0 when the buffer
/// does not yet hold a complete frame. Throws CodecError for a frame
/// that can never become valid (bad magic/version/length).
std::size_t try_decode_frame(const std::uint8_t* data, std::size_t size,
                             Envelope* out);

}  // namespace hoh::net
