#include "net/message.h"

namespace hoh::net {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kAck: return "Ack";
    case MsgType::kAllocateRequest: return "AllocateRequest";
    case MsgType::kAllocateReply: return "AllocateReply";
    case MsgType::kLaunchRequest: return "LaunchRequest";
    case MsgType::kContainerRunning: return "ContainerRunning";
    case MsgType::kReleaseRequest: return "ReleaseRequest";
    case MsgType::kNodeProbe: return "NodeProbe";
    case MsgType::kNodeStatus: return "NodeStatus";
    case MsgType::kWatchNotify: return "WatchNotify";
    case MsgType::kStoreIngest: return "StoreIngest";
    case MsgType::kAgentCommand: return "AgentCommand";
    case MsgType::kAgentEvent: return "AgentEvent";
    case MsgType::kSubmitRequest: return "SubmitRequest";
    case MsgType::kSubmitReply: return "SubmitReply";
    case MsgType::kHello: return "Hello";
    case MsgType::kUnitAssign: return "UnitAssign";
    case MsgType::kUnitResult: return "UnitResult";
    case MsgType::kBye: return "Bye";
  }
  return "unknown";
}

FrameHeader FrameHeader::unpack(Unpacker& u) {
  FrameHeader h;
  h.magic = u.u32();
  if (h.magic != kFrameMagic) {
    throw CodecError("frame: bad magic");
  }
  h.version = u.u16();
  if (h.version != kWireVersion) {
    throw CodecError("frame: unsupported wire version " +
                     std::to_string(h.version) + " (speaking " +
                     std::to_string(kWireVersion) + ")");
  }
  h.type = u.u16();
  h.length = u.u32();
  if (h.length > kMaxFrameBytes) {
    throw CodecError("frame: length " + std::to_string(h.length) +
                     " exceeds kMaxFrameBytes");
  }
  return h;
}

void AllocateRequest::pack(Packer& p) const {
  p.str(container_id);
  p.str(app_id);
  p.str(node);
  p.i64(memory_mb);
  p.i64(vcores);
  p.boolean(is_am);
}

AllocateRequest AllocateRequest::unpack(Unpacker& u) {
  AllocateRequest m;
  m.container_id = u.str();
  m.app_id = u.str();
  m.node = u.str();
  m.memory_mb = u.i64();
  m.vcores = u.i64();
  m.is_am = u.boolean();
  u.expect_done();
  return m;
}

void AllocateReply::pack(Packer& p) const {
  p.boolean(ok);
  p.str(node);
}

AllocateReply AllocateReply::unpack(Unpacker& u) {
  AllocateReply m;
  m.ok = u.boolean();
  m.node = u.str();
  u.expect_done();
  return m;
}

void LaunchRequest::pack(Packer& p) const {
  p.str(node);
  p.str(container_id);
  p.u64(correlation);
}

LaunchRequest LaunchRequest::unpack(Unpacker& u) {
  LaunchRequest m;
  m.node = u.str();
  m.container_id = u.str();
  m.correlation = u.u64();
  u.expect_done();
  return m;
}

void ContainerRunning::pack(Packer& p) const {
  p.str(container_id);
  p.u64(correlation);
}

ContainerRunning ContainerRunning::unpack(Unpacker& u) {
  ContainerRunning m;
  m.container_id = u.str();
  m.correlation = u.u64();
  u.expect_done();
  return m;
}

void ReleaseRequest::pack(Packer& p) const {
  p.str(node);
  p.str(container_id);
  p.u8(final_state);
}

ReleaseRequest ReleaseRequest::unpack(Unpacker& u) {
  ReleaseRequest m;
  m.node = u.str();
  m.container_id = u.str();
  m.final_state = u.u8();
  u.expect_done();
  return m;
}

void NodeProbe::pack(Packer& p) const { p.str(node); }

NodeProbe NodeProbe::unpack(Unpacker& u) {
  NodeProbe m;
  m.node = u.str();
  u.expect_done();
  return m;
}

void NodeStatus::pack(Packer& p) const {
  p.str(node);
  p.f64(last_heartbeat);
  p.boolean(alive);
}

NodeStatus NodeStatus::unpack(Unpacker& u) {
  NodeStatus m;
  m.node = u.str();
  m.last_heartbeat = u.f64();
  m.alive = u.boolean();
  u.expect_done();
  return m;
}

void WatchNotify::pack(Packer& p) const {
  p.u64(watcher_id);
  p.u8(event_type);
  p.str(bucket);
  p.str(key);
}

WatchNotify WatchNotify::unpack(Unpacker& u) {
  WatchNotify m;
  m.watcher_id = u.u64();
  m.event_type = u.u8();
  m.bucket = u.str();
  m.key = u.str();
  u.expect_done();
  return m;
}

void StoreIngest::pack(Packer& p) const {
  p.str(collection);
  p.str(unit_id);
  p.str(queue);
  p.bytes(document);
}

StoreIngest StoreIngest::unpack(Unpacker& u) {
  StoreIngest m;
  m.collection = u.str();
  m.unit_id = u.str();
  m.queue = u.str();
  m.document = u.bytes();
  u.expect_done();
  return m;
}

void AgentCommand::pack(Packer& p) const {
  p.str(pilot_id);
  p.u8(op);
}

AgentCommand AgentCommand::unpack(Unpacker& u) {
  AgentCommand m;
  m.pilot_id = u.str();
  m.op = u.u8();
  u.expect_done();
  return m;
}

void AgentEvent::pack(Packer& p) const {
  p.str(pilot_id);
  p.u8(kind);
}

AgentEvent AgentEvent::unpack(Unpacker& u) {
  AgentEvent m;
  m.pilot_id = u.str();
  m.kind = u.u8();
  u.expect_done();
  return m;
}

void SubmitRequest::pack(Packer& p) const {
  p.str(tenant_id);
  p.bytes(description);
}

SubmitRequest SubmitRequest::unpack(Unpacker& u) {
  SubmitRequest m;
  m.tenant_id = u.str();
  m.description = u.bytes();
  u.expect_done();
  return m;
}

void SubmitReply::pack(Packer& p) const { p.str(unit_id); }

SubmitReply SubmitReply::unpack(Unpacker& u) {
  SubmitReply m;
  m.unit_id = u.str();
  u.expect_done();
  return m;
}

void Hello::pack(Packer& p) const {
  p.u8(role);
  p.str(name);
  p.i64(cores);
}

Hello Hello::unpack(Unpacker& u) {
  Hello m;
  m.role = u.u8();
  m.name = u.str();
  m.cores = u.i64();
  u.expect_done();
  return m;
}

void UnitAssign::pack(Packer& p) const {
  p.str(unit_id);
  p.str(name);
  p.f64(duration);
}

UnitAssign UnitAssign::unpack(Unpacker& u) {
  UnitAssign m;
  m.unit_id = u.str();
  m.name = u.str();
  m.duration = u.f64();
  u.expect_done();
  return m;
}

void UnitResult::pack(Packer& p) const {
  p.str(unit_id);
  p.str(name);
  p.boolean(ok);
}

UnitResult UnitResult::unpack(Unpacker& u) {
  UnitResult m;
  m.unit_id = u.str();
  m.name = u.str();
  m.ok = u.boolean();
  u.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_frame(const Envelope& e) {
  Packer p;
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(e.type);
  h.length = static_cast<std::uint32_t>(e.payload.size());
  h.pack(p);
  auto out = p.take();
  out.insert(out.end(), e.payload.begin(), e.payload.end());
  return out;
}

std::size_t try_decode_frame(const std::uint8_t* data, std::size_t size,
                             Envelope* out) {
  if (size < kFrameHeaderBytes) return 0;
  Unpacker u(data, size);
  const FrameHeader h = FrameHeader::unpack(u);
  if (size < kFrameHeaderBytes + h.length) return 0;
  out->type = static_cast<MsgType>(h.type);
  out->payload.assign(data + kFrameHeaderBytes,
                      data + kFrameHeaderBytes + h.length);
  return kFrameHeaderBytes + h.length;
}

}  // namespace hoh::net
