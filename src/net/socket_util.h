#pragma once

#include <cstdint>
#include <string>

#include "net/message.h"
#include "net/ring_buffer.h"

/// \file socket_util.h
/// Blocking TCP helpers for the hohnode multi-process roles
/// (tools/hohnode.cpp). SocketTransport owns the in-simulator epoll
/// path; these cover the simpler case of a real peer process on the
/// other end of the connection: plain blocking sockets, one frame at a
/// time. They also keep every sockaddr/byte-order call inside src/net/,
/// where the wire-encoding analyzer rule allows them — tools and the
/// rest of src/ speak Envelope, never htons.

namespace hoh::net {

/// Opens a listening TCP socket on host:port (port 0 = ephemeral).
/// Returns the fd and stores the bound port in *bound_port when
/// non-null. Throws ResourceError / ConfigError on failure.
int tcp_listen(const std::string& host, std::uint16_t port,
               std::uint16_t* bound_port);

/// Blocking accept; returns the connected fd, or -1 when the listener
/// was closed / interrupted.
int tcp_accept(int listen_fd);

/// Blocking connect to host:port. Throws ResourceError on failure.
int tcp_connect(const std::string& host, std::uint16_t port);

/// Writes one framed envelope, looping over partial writes. Throws
/// ResourceError when the connection dies mid-write.
void write_frame(int fd, const Envelope& envelope);

/// Blocking read until \p buf holds one complete frame, which is
/// decoded into *out. Returns false on orderly EOF at a frame
/// boundary; throws CodecError on a malformed stream and ResourceError
/// on EOF mid-frame or a read error.
bool read_frame(int fd, RingBuffer& buf, Envelope* out);

/// close() + mark invalid; safe on -1.
void close_socket(int& fd);

}  // namespace hoh::net
