#include "net/json_codec.h"

namespace hoh::net {

namespace {

enum Tag : std::uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kNumber = 3,
  kString = 4,
  kArray = 5,
  kObject = 6,
};

common::Json unpack_json_depth(Unpacker& u, int depth) {
  if (depth > 64) {
    throw CodecError("json: nesting exceeds 64 levels");
  }
  const std::uint8_t tag = u.u8();
  switch (tag) {
    case kNull:
      return common::Json();
    case kFalse:
      return common::Json(false);
    case kTrue:
      return common::Json(true);
    case kNumber:
      return common::Json(u.f64());
    case kString:
      return common::Json(u.str());
    case kArray: {
      const std::uint32_t n = u.u32();
      common::JsonArray arr;
      arr.reserve(std::min<std::uint32_t>(n, 4096));
      for (std::uint32_t i = 0; i < n; ++i) {
        arr.push_back(unpack_json_depth(u, depth + 1));
      }
      return common::Json(std::move(arr));
    }
    case kObject: {
      const std::uint32_t n = u.u32();
      common::JsonObject obj;
      for (std::uint32_t i = 0; i < n; ++i) {
        std::string key = u.str();
        obj.emplace(std::move(key), unpack_json_depth(u, depth + 1));
      }
      return common::Json(std::move(obj));
    }
    default:
      throw CodecError("json: unknown tag " + std::to_string(tag));
  }
}

}  // namespace

void pack_json(Packer& p, const common::Json& doc) {
  if (doc.is_null()) {
    p.u8(kNull);
  } else if (doc.is_bool()) {
    p.u8(doc.as_bool() ? kTrue : kFalse);
  } else if (doc.is_number()) {
    p.u8(kNumber);
    p.f64(doc.as_number());
  } else if (doc.is_string()) {
    p.u8(kString);
    p.str(doc.as_string());
  } else if (doc.is_array()) {
    p.u8(kArray);
    const auto& arr = doc.as_array();
    p.u32(static_cast<std::uint32_t>(arr.size()));
    for (const auto& v : arr) pack_json(p, v);
  } else {
    p.u8(kObject);
    const auto& obj = doc.as_object();
    p.u32(static_cast<std::uint32_t>(obj.size()));
    for (const auto& [key, value] : obj) {
      p.str(key);
      pack_json(p, value);
    }
  }
}

common::Json unpack_json(Unpacker& u) { return unpack_json_depth(u, 0); }

}  // namespace hoh::net
