#include "net/socket_transport.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace hoh::net {

namespace {

/// epoll_event user tags.
constexpr std::uint32_t kTagListen = 0;
constexpr std::uint32_t kTagWake = 1;
constexpr std::uint32_t kTagPeer0 = 2;
constexpr std::uint32_t kTagPeer1 = 3;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)), reconnect_rng_(config_.reconnect_seed) {
  config_.reconnect.validate();
  open_listener();
  start_reactor();
  connect_with_backoff();
}

SocketTransport::~SocketTransport() {
  {
    common::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  wake_reactor();
  if (reactor_.joinable()) reactor_.join();
  {
    common::MutexLock lock(mu_);
    close_quietly(peers_[0].fd);
    close_quietly(peers_[1].fd);
    close_quietly(pending_client_fd_);
  }
  close_quietly(listen_fd_);
  close_quietly(epoll_fd_);
  close_quietly(wake_fd_);
}

void SocketTransport::open_listener() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw common::ResourceError("SocketTransport: socket() failed: " +
                                std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw common::ConfigError("SocketTransport: bad host " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw common::ResourceError("SocketTransport: bind(" + config_.host + ":" +
                                std::to_string(config_.port) +
                                ") failed: " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 8) != 0) {
    throw common::ResourceError(std::string("SocketTransport: listen failed: ") +
                                std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
}

void SocketTransport::start_reactor() {
  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw common::ResourceError("SocketTransport: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = kTagListen;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u32 = kTagWake;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  reactor_ = std::thread([this] { reactor_main(); });
}

void SocketTransport::wake_reactor() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the reactor; ignore the result.
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void SocketTransport::connect_with_backoff() {
  const common::RetryPolicy& policy = config_.reconnect;
  for (int attempt = 1;; ++attempt) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port_);
      ::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr);
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        {
          common::MutexLock lock(mu_);
          conn_error_ = false;  // only this (engine) thread reads it
          pending_client_fd_ = fd;
        }
        wake_reactor();
        // Wait until the reactor adopted the dialed side and accepted
        // the server side (or the fresh connection died instantly).
        common::MutexLock lock(mu_);
        while (!connected_ && !conn_error_ && !stopping_) {
          cv_.wait(mu_);
        }
        if (stopping_) {
          throw common::StateError("SocketTransport: shutting down");
        }
        if (connected_) return;
        // conn_error_: the connection died during the handshake; retry.
      } else {
        ::close(fd);
      }
    }
    if (!policy.allows(attempt + 1)) {
      throw common::ResourceError(
          "SocketTransport: could not establish loopback connection to " +
          config_.host + ":" + std::to_string(port_) + " after " +
          std::to_string(attempt) + " attempts");
    }
    const double backoff = policy.backoff_for(attempt, reconnect_rng_);
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

// --- registry --------------------------------------------------------

void SocketTransport::register_endpoint(const std::string& endpoint,
                                        Handler handler) {
  common::MutexLock lock(mu_);
  endpoints_[endpoint] = std::move(handler);
}

void SocketTransport::unregister_endpoint(const std::string& endpoint) {
  common::MutexLock lock(mu_);
  endpoints_.erase(endpoint);
}

bool SocketTransport::has_endpoint(const std::string& endpoint) const {
  common::MutexLock lock(mu_);
  return endpoints_.count(endpoint) != 0;
}

Envelope SocketTransport::dispatch(const std::string& endpoint,
                                   const Envelope& request) {
  Handler handler;
  {
    common::MutexLock lock(mu_);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      throw common::NotFoundError("transport: no endpoint \"" + endpoint +
                                  "\"");
    }
    handler = it->second;
  }
  return handler(request);
}

TransportStats SocketTransport::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

// --- wire ------------------------------------------------------------

std::vector<std::uint8_t> SocketTransport::encode_wire(const WireMessage& msg) {
  Packer body;
  body.u64(msg.seq);
  body.u8(msg.kind);
  body.str(msg.endpoint);
  body.bytes(msg.envelope.payload);
  return encode_frame(Envelope{msg.envelope.type, body.take()});
}

SocketTransport::WireMessage SocketTransport::decode_wire(
    const Envelope& frame) {
  Unpacker u(frame.payload);
  WireMessage msg;
  msg.seq = u.u64();
  msg.kind = u.u8();
  msg.endpoint = u.str();
  msg.envelope.type = frame.type;
  msg.envelope.payload = u.bytes();
  u.expect_done();
  return msg;
}

SocketTransport::WireMessage SocketTransport::wire_transfer(
    int peer_slot, const WireMessage& msg) {
  const std::vector<std::uint8_t> bytes = encode_wire(msg);
  for (;;) {
    bool need_reconnect = false;
    {
      common::MutexLock lock(mu_);
      if (stopping_) {
        throw common::StateError("SocketTransport: shutting down");
      }
      if (!connected_ || conn_error_) {
        need_reconnect = true;
      } else {
        peers_[peer_slot].out.push_back(bytes);
        stats_.bytes_sent += bytes.size();
      }
    }
    if (need_reconnect) {
      {
        common::MutexLock lock(mu_);
        ++stats_.reconnects;
      }
      connect_with_backoff();
      continue;  // retransmit on the fresh connection
    }
    wake_reactor();
    common::MutexLock lock(mu_);
    for (;;) {
      while (inbound_.empty() && !conn_error_ && !stopping_) {
        cv_.wait(mu_);
      }
      if (stopping_) {
        throw common::StateError("SocketTransport: shutting down");
      }
      if (conn_error_) break;  // outer loop: reconnect + retransmit
      Envelope frame = std::move(inbound_.front());
      inbound_.pop_front();
      WireMessage got = decode_wire(frame);
      // A frame from before a reconnect could in principle slip
      // through; drop it and keep waiting for ours.
      if (got.seq != msg.seq) continue;
      return got;
    }
  }
}

Envelope SocketTransport::call(const std::string& endpoint,
                               const Envelope& request) {
  WireMessage req;
  {
    common::MutexLock lock(mu_);
    req.seq = next_seq_++;
    ++stats_.calls;
  }
  req.kind = kRequest;
  req.endpoint = endpoint;
  req.envelope = request;
  // Request crosses the wire client -> server...
  const WireMessage delivered = wire_transfer(0, req);
  // ...the handler runs here, on the caller's thread...
  Envelope reply = dispatch(delivered.endpoint, delivered.envelope);
  // ...and the reply crosses back server -> client.
  WireMessage rep;
  {
    common::MutexLock lock(mu_);
    rep.seq = next_seq_++;
  }
  rep.kind = kReply;
  rep.endpoint = endpoint;
  rep.envelope = std::move(reply);
  return wire_transfer(1, rep).envelope;
}

void SocketTransport::send(const std::string& endpoint,
                           const Envelope& message) {
  WireMessage msg;
  {
    common::MutexLock lock(mu_);
    msg.seq = next_seq_++;
    ++stats_.sends;
  }
  msg.kind = kOneWay;
  msg.endpoint = endpoint;
  msg.envelope = message;
  const WireMessage delivered = wire_transfer(0, msg);
  dispatch(delivered.endpoint, delivered.envelope);
}

void SocketTransport::kill_connection() {
  common::MutexLock lock(mu_);
  if (peers_[0].fd >= 0) ::shutdown(peers_[0].fd, SHUT_RDWR);
}

// --- reactor ---------------------------------------------------------

void SocketTransport::reactor_main() {
  epoll_event events[16];
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, 16, /*timeout_ms=*/200);
    {
      common::MutexLock lock(mu_);
      if (stopping_) return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: shutting down
    }
    for (int i = 0; i < n; ++i) {
      const std::uint32_t tag = events[i].data.u32;
      const std::uint32_t ev = events[i].events;
      if (tag == kTagWake) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const auto r =
            ::read(wake_fd_, &drained, sizeof(drained));
      } else if (tag == kTagListen) {
        reactor_accept();
      } else {
        const int slot = (tag == kTagPeer0) ? 0 : 1;
        bool alive = true;
        if (ev & (EPOLLHUP | EPOLLERR)) alive = false;
        if (alive && (ev & EPOLLIN)) alive = reactor_read(slot);
        if (alive && (ev & EPOLLOUT)) alive = reactor_write(slot);
        if (!alive) {
          reactor_drop_connection();
          continue;
        }
      }
    }
    // The wake path also covers "new bytes queued": drain every peer
    // with pending output.
    bool dead = false;
    {
      common::MutexLock lock(mu_);
      // Adopt a freshly dialed client side.
      if (pending_client_fd_ >= 0 && peers_[0].fd < 0) {
        peers_[0].fd = pending_client_fd_;
        pending_client_fd_ = -1;
        set_nonblocking(peers_[0].fd);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u32 = kTagPeer0;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, peers_[0].fd, &ev);
      }
      if (peers_[0].fd >= 0 && peers_[1].fd >= 0 && !connected_) {
        connected_ = true;
        cv_.notify_all();
      }
    }
    for (int slot = 0; slot < 2 && !dead; ++slot) {
      bool has_out;
      {
        common::MutexLock lock(mu_);
        has_out = peers_[slot].fd >= 0 && !peers_[slot].out.empty();
      }
      if (has_out) dead = !reactor_write(slot);
    }
    if (dead) reactor_drop_connection();
  }
}

void SocketTransport::reactor_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing (more) to accept
    common::MutexLock lock(mu_);
    if (peers_[1].fd >= 0) {
      // Only one loopback connection is served; late strays are closed.
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_nonblocking(fd);
    peers_[1].fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = kTagPeer1;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    if (peers_[0].fd >= 0 && !connected_) {
      connected_ = true;
    }
    cv_.notify_all();
  }
}

bool SocketTransport::reactor_read(int slot) {
  int fd;
  {
    common::MutexLock lock(mu_);
    fd = peers_[slot].fd;
  }
  if (fd < 0) return true;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return false;  // orderly close
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    common::MutexLock lock(mu_);
    Peer& peer = peers_[slot];
    peer.in.append(buf, static_cast<std::size_t>(n));
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    // Reassemble complete frames off the ring.
    for (;;) {
      std::uint8_t header[kFrameHeaderBytes];
      if (peer.in.peek(header, sizeof(header)) < sizeof(header)) break;
      std::size_t total;
      try {
        Unpacker hu(header, sizeof(header));
        const FrameHeader fh = FrameHeader::unpack(hu);
        total = kFrameHeaderBytes + fh.length;
      } catch (const CodecError&) {
        return false;  // corrupt stream: drop the connection
      }
      if (peer.in.size() < total) break;
      std::vector<std::uint8_t> frame(total);
      peer.in.peek(frame.data(), total);
      peer.in.consume(total);
      Envelope env;
      try {
        if (try_decode_frame(frame.data(), frame.size(), &env) != total) {
          return false;
        }
      } catch (const CodecError&) {
        return false;
      }
      inbound_.push_back(std::move(env));
      cv_.notify_all();
    }
  }
  return true;
}

bool SocketTransport::reactor_write(int slot) {
  for (;;) {
    int fd;
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    {
      common::MutexLock lock(mu_);
      Peer& peer = peers_[slot];
      fd = peer.fd;
      if (fd < 0) return true;
      if (peer.out.empty()) {
        arm_writer(slot, false);
        return true;
      }
      data = peer.out.front().data() + peer.out_offset;
      len = peer.out.front().size() - peer.out_offset;
    }
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        common::MutexLock lock(mu_);
        arm_writer(slot, true);
        return true;
      }
      if (errno == EINTR) continue;
      return false;
    }
    common::MutexLock lock(mu_);
    Peer& peer = peers_[slot];
    peer.out_offset += static_cast<std::size_t>(n);
    if (!peer.out.empty() && peer.out_offset >= peer.out.front().size()) {
      peer.out.pop_front();
      peer.out_offset = 0;
    }
  }
}

void SocketTransport::arm_writer(int slot, bool on) {
  Peer& peer = peers_[slot];
  if (peer.fd < 0 || peer.want_write == on) return;
  peer.want_write = on;
  epoll_event ev{};
  ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
  ev.data.u32 = (slot == 0) ? kTagPeer0 : kTagPeer1;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, peer.fd, &ev);
}

void SocketTransport::reactor_drop_connection() {
  common::MutexLock lock(mu_);
  for (Peer& peer : peers_) {
    if (peer.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, peer.fd, nullptr);
      ::close(peer.fd);
      peer.fd = -1;
    }
    peer.in.clear();
    peer.out.clear();
    peer.out_offset = 0;
    peer.want_write = false;
  }
  inbound_.clear();
  connected_ = false;
  conn_error_ = true;
  cv_.notify_all();
}

}  // namespace hoh::net
