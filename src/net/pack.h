#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

/// \file pack.h
/// SLURM-style pack/unpack primitives: every scalar is written as
/// explicit big-endian byte shifts, so the wire image is identical on
/// any host and no serialization ever goes through reinterpret_cast or
/// struct memcpy (the analyzer's wire-encoding rule bans those outside
/// this directory). Strings carry a u32 length prefix; doubles travel
/// as their IEEE-754 bit pattern in a u64.
///
/// Unpacker is bounds-checked: reading past the buffer, or a length
/// prefix larger than the remaining bytes, throws CodecError instead of
/// touching out-of-range memory — the property the codec fuzz tests
/// drive with truncated and corrupted frames.

namespace hoh::net {

/// Malformed wire data (truncation, bad length prefix, bad magic or
/// version, type mismatch). Deliberately distinct from ConfigError:
/// codec errors come from the peer, not from the operator.
class CodecError : public common::Error {
 public:
  using common::Error::Error;
};

/// Append-only big-endian encoder.
class Packer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw bytes with a u32 length prefix (nested payloads).
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked big-endian decoder over a borrowed buffer.
class Unpacker {
 public:
  Unpacker(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  explicit Unpacker(const std::vector<std::uint8_t>& buf)
      : Unpacker(buf.data(), buf.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) |
        static_cast<std::uint16_t>(data_[pos_ + 1]));
    pos_ += 2;
    return v;
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() { return u8() != 0; }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_) + pos_, n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  std::size_t remaining() const { return size_ - pos_; }

  /// Call at the end of a message unpack: trailing bytes mean the frame
  /// length and the payload disagree.
  void expect_done() const {
    if (pos_ != size_) {
      throw CodecError("unpack: " + std::to_string(size_ - pos_) +
                       " trailing bytes after message");
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw CodecError("unpack: truncated buffer (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(size_ - pos_) + ")");
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace hoh::net
