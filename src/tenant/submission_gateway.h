#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pilot/unit_manager.h"
#include "sim/engine.h"
#include "tenant/accounting.h"
#include "tenant/fair_share.h"
#include "tenant/tenant.h"

/// \file submission_gateway.h
/// The multi-tenant front door in front of the UnitManager. Admission
/// control (token-bucket rate limit rejects; capacity quotas queue),
/// cross-tenant dispatch ordering (FIFO or fair-share), an optional
/// priority-preemption path, and per-tenant usage accounting.
///
/// Invariants (DESIGN.md §11):
///  * Admission happens before any StateStore insert: a queued unit
///    lives only in the gateway until dispatch calls UnitManager::submit,
///    so rejected or still-queued work never touches the store, and a
///    plan without a tenants: section is byte-identical to the
///    gateway-less path (no gateway object is even constructed).
///  * Dispatch is event-driven (PR 5 watch plane): a store watch on the
///    "unit" collection observes in-flight units reaching a final state
///    and schedules one deduplicated zero-delay dispatch tick — there is
///    no periodic loop (lint rule 5).
///  * Preemption uses only the legal requeue edge from PR 4: the agent
///    parks the victim at kFailed (the one final state with an out-edge)
///    and redispatch crosses kFailed -> kPendingAgent.

namespace hoh::tenant {

/// Cross-tenant ordering of the gateway dispatch queue.
enum class SchedulingPolicy {
  kFifo,       // global arrival order, tenant-blind
  kFairShare,  // FairShareScheduler priority order
};

SchedulingPolicy scheduling_policy_from_string(const std::string& name);
const char* to_string(SchedulingPolicy policy);

struct GatewayConfig {
  SchedulingPolicy policy = SchedulingPolicy::kFairShare;

  /// Usage half-life handed to the FairShareScheduler.
  common::Seconds decay_half_life = 600.0;

  /// Max units in flight (dispatched, not yet final) across all tenants
  /// — the gateway's shared dispatch window. 0 = unlimited.
  int dispatch_window = 0;

  /// Fair-share only: preempt a running unit of the lowest-priority
  /// tenant when a tenant whose effective priority is at least
  /// preempt_ratio times higher is blocked on a full window.
  bool preemption = false;
  double preempt_ratio = 4.0;

  /// Keep the accounting journal (durable serialization).
  bool accounting_journal = true;
};

/// Outcome of SubmissionGateway::submit.
struct Admission {
  bool accepted = false;  // false = rejected at admission
  bool queued = false;    // accepted but held gateway-side for now
  std::string reason;     // rejection reason ("rate-limit")
};

class SubmissionGateway {
 public:
  /// The gateway fronts \p um; both must outlive it. Registers a store
  /// watch on the "unit" collection (removed in the destructor).
  explicit SubmissionGateway(pilot::UnitManager& um,
                             GatewayConfig config = {});
  ~SubmissionGateway();

  SubmissionGateway(const SubmissionGateway&) = delete;
  SubmissionGateway& operator=(const SubmissionGateway&) = delete;

  void add_tenant(TenantSpec spec);
  bool has_tenant(const std::string& id) const {
    return tenants_.count(id) > 0;
  }

  /// Admission control + (possibly deferred) dispatch. Throws
  /// NotFoundError for an unregistered tenant.
  Admission submit(const std::string& tenant_id,
                   pilot::ComputeUnitDescription desc);

  /// True when the gateway holds no pending and no in-flight units —
  /// the experiment barrier is `um.all_done() && gateway.quiescent()`.
  bool quiescent() const;

  std::size_t pending_count() const;
  std::size_t in_flight_count() const { return in_flight_.size(); }
  std::size_t peak_in_flight() const { return peak_in_flight_; }
  std::size_t units_preempted() const { return units_preempted_; }

  AccountingStore& accounting() { return accounting_; }
  const AccountingStore& accounting() const { return accounting_; }
  FairShareScheduler& scheduler() { return scheduler_; }

  /// Names of units the gateway observed reaching kDone (digest input).
  const std::vector<std::string>& completed_unit_names() const {
    return completed_names_;
  }

  const GatewayConfig& config() const { return config_; }

 private:
  /// A unit admitted but not (currently) in flight. `unit_id` is empty
  /// until first dispatch; a preempted unit parks here with its id so
  /// redispatch reuses the existing store document.
  struct PendingUnit {
    std::uint64_t seq = 0;  // global arrival order (FIFO key)
    pilot::ComputeUnitDescription desc;
    common::Seconds submit_time = 0.0;
    std::string unit_id;
    bool wait_recorded = false;
  };

  struct FlightRec {
    std::string tenant;
    std::string name;
    std::uint64_t seq = 0;
    common::Seconds submit_time = 0.0;
    common::Seconds dispatch_time = 0.0;
    int cores = 1;
    double duration = 0.0;
    double charged = 0.0;  // fair-share usage charged at dispatch
    bool wait_recorded = false;
    std::shared_ptr<pilot::ComputeUnit> handle;
  };

  struct TenantRec {
    TenantSpec spec;
    TokenBucket bucket;
    std::deque<PendingUnit> pending;
    int in_flight = 0;
    int cores_in_flight = 0;
  };

  /// Schedules one deduplicated zero-delay dispatch tick.
  void request_dispatch();
  void dispatch_pass();
  bool quota_allows(const TenantRec& tenant, int head_cores) const;
  void dispatch_head(TenantRec& tenant);
  void on_store_event(const pilot::WatchEvent& event);
  void handle_final(const std::string& unit_id, pilot::UnitState state);
  /// One preemption attempt on behalf of blocked tenant \p claimant.
  bool try_preempt_for(const std::string& claimant, common::Seconds now);

  pilot::UnitManager& um_;
  sim::Engine& engine_;
  GatewayConfig config_;
  FairShareScheduler scheduler_;
  AccountingStore accounting_;
  std::map<std::string, TenantRec> tenants_;
  std::map<std::string, FlightRec> in_flight_;  // unit id -> record
  std::vector<std::string> completed_names_;
  pilot::WatchHandle watch_;
  sim::EventHandle tick_event_;
  bool tick_pending_ = false;
  std::uint64_t next_seq_ = 1;
  std::size_t peak_in_flight_ = 0;
  std::size_t units_preempted_ = 0;
};

}  // namespace hoh::tenant
