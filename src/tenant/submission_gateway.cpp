#include "tenant/submission_gateway.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "net/json_codec.h"
#include "net/message.h"
#include "net/transport.h"
#include "pilot/agent/agent.h"
#include "pilot/transitions.h"

namespace hoh::tenant {

SchedulingPolicy scheduling_policy_from_string(const std::string& name) {
  if (name == "fifo") return SchedulingPolicy::kFifo;
  if (name == "fair-share" || name == "fairshare") {
    return SchedulingPolicy::kFairShare;
  }
  throw common::ConfigError("unknown gateway policy: " + name);
}

const char* to_string(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kFairShare:
      return "fair-share";
  }
  return "?";
}

SubmissionGateway::SubmissionGateway(pilot::UnitManager& um,
                                     GatewayConfig config)
    : um_(um),
      engine_(um.session().engine()),
      config_(config),
      scheduler_(config.decay_half_life),
      accounting_(config.accounting_journal) {
  // Watch plane: the gateway learns about unit lifecycle progress from
  // the same store writes the agents make — in-flight units reaching
  // kExecuting feed the wait-time accounting, final states free a
  // window slot and trigger a dispatch tick. No periodic loop.
  watch_ = um_.session().store().watch(
      "unit", "",
      [this](const pilot::WatchEvent& event) { on_store_event(event); });
}

SubmissionGateway::~SubmissionGateway() {
  if (watch_.valid()) {
    um_.session().store().unwatch(watch_);
    watch_ = pilot::WatchHandle{};
  }
  if (tick_event_.valid()) {
    engine_.cancel(tick_event_);
    tick_event_ = sim::EventHandle{};
  }
}

void SubmissionGateway::add_tenant(TenantSpec spec) {
  if (spec.id.empty()) {
    throw common::ConfigError("SubmissionGateway: empty tenant id");
  }
  TenantRec rec;
  rec.bucket = TokenBucket(spec.quota.submit_rate, spec.quota.submit_burst);
  scheduler_.add_tenant(spec.id, spec.share_weight);
  rec.spec = std::move(spec);
  const std::string id = rec.spec.id;
  tenants_[id] = std::move(rec);
}

bool SubmissionGateway::quota_allows(const TenantRec& tenant,
                                     int head_cores) const {
  const TenantQuota& quota = tenant.spec.quota;
  if (quota.max_in_flight_units > 0 &&
      tenant.in_flight >= quota.max_in_flight_units) {
    return false;
  }
  if (quota.max_cores > 0 &&
      tenant.cores_in_flight + head_cores > quota.max_cores) {
    return false;
  }
  return true;
}

Admission SubmissionGateway::submit(const std::string& tenant_id,
                                    pilot::ComputeUnitDescription desc) {
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) {
    throw common::NotFoundError("SubmissionGateway: unknown tenant " +
                                tenant_id);
  }
  TenantRec& tenant = it->second;
  const common::Seconds now = engine_.now();
  accounting_.on_submitted(now, tenant_id, desc.name);

  // Admission gate 1: submit rate. Over-rate work is refused outright —
  // before any StateStore insert — so a storm from one tenant cannot
  // flood the shared store.
  if (!tenant.bucket.try_take(now)) {
    accounting_.on_rejected(now, tenant_id, desc.name, "rate-limit");
    return Admission{false, false, "rate-limit"};
  }

  // Admission gate 2: capacity quotas queue (never reject) — the unit
  // stays gateway-side until a dispatch pass finds room.
  const bool immediate =
      tenant.pending.empty() && quota_allows(tenant, desc.cores) &&
      (config_.dispatch_window <= 0 ||
       static_cast<int>(in_flight_.size()) < config_.dispatch_window);
  PendingUnit unit;
  unit.seq = next_seq_++;
  unit.desc = std::move(desc);
  unit.submit_time = now;
  accounting_.on_admitted(now, tenant_id, unit.desc.name, !immediate);
  tenant.pending.push_back(std::move(unit));
  request_dispatch();
  return Admission{true, !immediate, ""};
}

void SubmissionGateway::request_dispatch() {
  if (tick_pending_) return;
  tick_pending_ = true;
  tick_event_ = engine_.schedule(0.0, [this] {
    tick_pending_ = false;
    tick_event_ = sim::EventHandle{};
    dispatch_pass();
  });
}

void SubmissionGateway::dispatch_pass() {
  const common::Seconds now = engine_.now();
  while (true) {
    // Eligible = has pending work and its head fits the tenant quotas.
    std::vector<std::string> eligible;
    for (const auto& [id, tenant] : tenants_) {
      if (!tenant.pending.empty() &&
          quota_allows(tenant, tenant.pending.front().desc.cores)) {
        eligible.push_back(id);
      }
    }
    if (eligible.empty()) return;

    std::string winner;
    if (config_.policy == SchedulingPolicy::kFairShare) {
      winner = scheduler_.pick(eligible, now);
    } else {
      std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
      for (const auto& id : eligible) {
        const std::uint64_t seq = tenants_.at(id).pending.front().seq;
        if (seq < best_seq) {
          best_seq = seq;
          winner = id;
        }
      }
    }

    if (config_.dispatch_window > 0 &&
        static_cast<int>(in_flight_.size()) >= config_.dispatch_window) {
      // Window full. Fair-share may evict a much lower-priority tenant's
      // freshest unit for the winner; otherwise wait for a completion.
      if (config_.policy == SchedulingPolicy::kFairShare &&
          config_.preemption && try_preempt_for(winner, now)) {
        continue;  // a slot is free now; re-run the pick
      }
      return;
    }
    dispatch_head(tenants_.at(winner));
  }
}

void SubmissionGateway::dispatch_head(TenantRec& tenant) {
  const common::Seconds now = engine_.now();
  PendingUnit unit = std::move(tenant.pending.front());
  tenant.pending.pop_front();

  FlightRec flight;
  if (unit.unit_id.empty()) {
    // First dispatch: the unit enters the StateStore here (U.1/U.2) —
    // and only here, which is the admission-before-insert invariant.
    // The submission crosses the message boundary (DESIGN.md §14): the
    // description travels as packed binary Json in a SubmitRequest and
    // the Unit-Manager answers with the assigned unit id.
    net::Packer packer;
    net::pack_json(packer, pilot::unit_to_json(unit.desc));
    const auto reply = net::call<net::SubmitReply>(
        um_.session().transport(), um_.submit_endpoint(),
        net::SubmitRequest{tenant.spec.id, packer.take()});
    unit.unit_id = reply.unit_id;
    flight.handle = um_.find_unit(unit.unit_id);
  } else {
    // Parked preempted unit: cross the legal kFailed -> kPendingAgent
    // edge back onto a live pilot.
    if (!um_.redispatch_failed(unit.unit_id)) {
      tenant.pending.push_front(std::move(unit));  // no live pilot yet
      return;
    }
    flight.handle = um_.find_unit(unit.unit_id);
  }
  flight.tenant = tenant.spec.id;
  flight.name = unit.desc.name;
  flight.seq = unit.seq;
  flight.submit_time = unit.submit_time;
  flight.dispatch_time = now;
  flight.cores = unit.desc.cores;
  flight.duration = unit.desc.duration;
  flight.wait_recorded = unit.wait_recorded;
  tenant.in_flight += 1;
  tenant.cores_in_flight += unit.desc.cores;
  if (config_.policy == SchedulingPolicy::kFairShare) {
    // Charge the estimated usage at dispatch; a preemption refunds it.
    flight.charged = unit.desc.cores * std::max(unit.desc.duration, 0.0);
    scheduler_.charge(flight.tenant, flight.charged, now);
  }
  accounting_.on_dispatched(now, flight.tenant, flight.name);
  um_.session().trace().record(now, "tenant", "dispatched",
                               {{"tenant", flight.tenant},
                                {"unit", unit.unit_id}});
  in_flight_[unit.unit_id] = std::move(flight);
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_.size());
}

bool SubmissionGateway::try_preempt_for(const std::string& claimant,
                                        common::Seconds now) {
  // Victim tenant: lowest effective priority among window holders.
  const std::string* victim_tenant = nullptr;
  double victim_priority = 0.0;
  for (const auto& [id, tenant] : tenants_) {
    if (id == claimant || tenant.in_flight == 0) continue;
    const double priority = scheduler_.effective_priority(id, now);
    if (victim_tenant == nullptr || priority < victim_priority) {
      victim_tenant = &id;
      victim_priority = priority;
    }
  }
  if (victim_tenant == nullptr) return false;
  const double claimant_priority =
      scheduler_.effective_priority(claimant, now);
  if (claimant_priority < config_.preempt_ratio * victim_priority) {
    return false;
  }

  // Victim unit: the victim tenant's most recently dispatched in-flight
  // unit (least sunk work). The agent may refuse one mid-staging; try
  // the next.
  std::vector<const std::string*> candidates;
  for (const auto& [unit_id, flight] : in_flight_) {
    if (flight.tenant == *victim_tenant) candidates.push_back(&unit_id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [this](const std::string* a, const std::string* b) {
              const FlightRec& fa = in_flight_.at(*a);
              const FlightRec& fb = in_flight_.at(*b);
              if (fa.dispatch_time != fb.dispatch_time) {
                return fa.dispatch_time > fb.dispatch_time;
              }
              return fa.seq > fb.seq;
            });
  for (const std::string* unit_id : candidates) {
    FlightRec& flight = in_flight_.at(*unit_id);
    auto pilot = um_.pilot_by_id(flight.handle->pilot_id());
    if (pilot == nullptr || pilot->agent() == nullptr) continue;
    if (!pilot->agent()->preempt_unit(*unit_id)) continue;

    // The victim now sits at kFailed in the store (the PR 4 requeue
    // edge's tail state). Park it at the front of its tenant queue so
    // it is the next unit its tenant redispatches.
    const std::string id = *unit_id;  // copy before the map erase
    TenantRec& owner = tenants_.at(flight.tenant);
    PendingUnit parked;
    parked.seq = flight.seq;
    parked.desc = flight.handle->description();
    parked.submit_time = flight.submit_time;
    parked.unit_id = id;
    parked.wait_recorded = flight.wait_recorded;
    owner.in_flight -= 1;
    owner.cores_in_flight -= flight.cores;
    scheduler_.charge(flight.tenant, -flight.charged, now);  // refund
    accounting_.on_preempted(now, flight.tenant, flight.name);
    um_.session().trace().record(now, "tenant", "preempted",
                                 {{"tenant", flight.tenant},
                                  {"unit", id},
                                  {"for", claimant}});
    owner.pending.push_front(std::move(parked));
    in_flight_.erase(id);
    units_preempted_ += 1;
    return true;
  }
  return false;
}

void SubmissionGateway::on_store_event(const pilot::WatchEvent& event) {
  if (event.type != pilot::WatchEventType::kUpdate) return;
  auto it = in_flight_.find(event.key);
  if (it == in_flight_.end()) return;
  const pilot::UnitState state = it->second.handle->state();
  const common::Seconds now = engine_.now();
  if (state == pilot::UnitState::kExecuting && !it->second.wait_recorded) {
    it->second.wait_recorded = true;
    accounting_.on_started(now, it->second.tenant, it->second.name,
                           now - it->second.submit_time);
  }
  if (pilot::is_final(state)) handle_final(event.key, state);
}

void SubmissionGateway::handle_final(const std::string& unit_id,
                                     pilot::UnitState state) {
  auto it = in_flight_.find(unit_id);
  if (it == in_flight_.end()) return;
  FlightRec flight = std::move(it->second);
  in_flight_.erase(it);
  TenantRec& tenant = tenants_.at(flight.tenant);
  tenant.in_flight -= 1;
  tenant.cores_in_flight -= flight.cores;
  const common::Seconds now = engine_.now();
  if (state == pilot::UnitState::kDone) {
    accounting_.on_completed(now, flight.tenant, flight.name,
                             flight.cores * flight.duration);
    completed_names_.push_back(flight.name);
  } else {
    accounting_.on_failed(now, flight.tenant, flight.name);
  }
  // A slot freed: see whether queued work fits now. This tick — driven
  // by the completion's store write — is the gateway's only dispatch
  // trigger besides submit() itself.
  request_dispatch();
}

bool SubmissionGateway::quiescent() const {
  if (!in_flight_.empty()) return false;
  for (const auto& [id, tenant] : tenants_) {
    if (!tenant.pending.empty()) return false;
  }
  return true;
}

std::size_t SubmissionGateway::pending_count() const {
  std::size_t count = 0;
  for (const auto& [id, tenant] : tenants_) count += tenant.pending.size();
  return count;
}

}  // namespace hoh::tenant
