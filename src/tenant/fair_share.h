#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/units.h"

/// \file fair_share.h
/// SLURM assoc_mgr-style fair-share scheduler: each tenant carries a
/// share weight and an exponentially decayed usage accumulator;
/// effective priority is share_weight / (decayed_usage + epsilon). The
/// gateway orders its cross-tenant dispatch queue by this priority, so
/// a tenant that consumed more than its share in the recent past yields
/// to tenants below theirs, and the half-life controls how fast history
/// is forgiven.

namespace hoh::tenant {

class FairShareScheduler {
 public:
  /// \p half_life: seconds for accumulated usage to decay to half.
  /// Non-positive disables decay (usage accumulates forever).
  explicit FairShareScheduler(common::Seconds half_life = 600.0)
      : half_life_(half_life) {}

  void add_tenant(const std::string& id, double share_weight);
  bool has_tenant(const std::string& id) const {
    return assocs_.count(id) > 0;
  }

  /// Adds \p usage (core-seconds) to the tenant's accumulator at \p now.
  void charge(const std::string& id, double usage, common::Seconds now);

  /// Usage decayed to \p now (lazy: stored value + stamp, decayed on
  /// read, so idle tenants cost nothing).
  double decayed_usage(const std::string& id, common::Seconds now) const;

  /// share_weight / (decayed_usage + epsilon). Higher = served sooner.
  double effective_priority(const std::string& id,
                            common::Seconds now) const;

  /// Highest-priority id among \p candidates. Ties break to the least
  /// recently picked tenant, then lexicographic id — with equal shares
  /// and equal usage this degenerates to round-robin, which the property
  /// tests pin down. Empty candidates returns "".
  std::string pick(const std::vector<std::string>& candidates,
                   common::Seconds now);

  double share_weight(const std::string& id) const;

 private:
  struct Assoc {
    double weight = 1.0;
    double usage = 0.0;            // decayed to `stamp`
    common::Seconds stamp = 0.0;   // virtual time of last fold
    std::uint64_t last_pick = 0;   // pick sequence, for the tie-break
  };

  double decay_to(const Assoc& assoc, common::Seconds now) const;
  const Assoc& find(const std::string& id) const;

  common::Seconds half_life_;
  std::map<std::string, Assoc> assocs_;
  std::uint64_t pick_seq_ = 0;
};

}  // namespace hoh::tenant
