#include "tenant/fair_share.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace hoh::tenant {

namespace {
/// Floor under decayed usage so a fresh tenant's priority is finite and
/// the weight ordering still holds at zero usage.
constexpr double kUsageEpsilon = 1e-9;
}  // namespace

void FairShareScheduler::add_tenant(const std::string& id,
                                    double share_weight) {
  if (id.empty()) {
    throw common::ConfigError("FairShareScheduler: empty tenant id");
  }
  if (share_weight <= 0.0) {
    throw common::ConfigError("FairShareScheduler: share_weight must be > 0");
  }
  Assoc assoc;
  assoc.weight = share_weight;
  assocs_[id] = assoc;
}

const FairShareScheduler::Assoc& FairShareScheduler::find(
    const std::string& id) const {
  auto it = assocs_.find(id);
  if (it == assocs_.end()) {
    throw common::NotFoundError("FairShareScheduler: unknown tenant " + id);
  }
  return it->second;
}

double FairShareScheduler::decay_to(const Assoc& assoc,
                                    common::Seconds now) const {
  if (half_life_ <= 0.0 || now <= assoc.stamp) return assoc.usage;
  return assoc.usage * std::exp2(-(now - assoc.stamp) / half_life_);
}

void FairShareScheduler::charge(const std::string& id, double usage,
                                common::Seconds now) {
  auto it = assocs_.find(id);
  if (it == assocs_.end()) {
    throw common::NotFoundError("FairShareScheduler: unknown tenant " + id);
  }
  // Clamped below at zero so a preemption refund cannot push usage
  // negative (the charge decayed since it was made).
  it->second.usage = std::max(0.0, decay_to(it->second, now) + usage);
  it->second.stamp = now;
}

double FairShareScheduler::decayed_usage(const std::string& id,
                                         common::Seconds now) const {
  return decay_to(find(id), now);
}

double FairShareScheduler::effective_priority(const std::string& id,
                                              common::Seconds now) const {
  const Assoc& assoc = find(id);
  return assoc.weight / (decay_to(assoc, now) + kUsageEpsilon);
}

double FairShareScheduler::share_weight(const std::string& id) const {
  return find(id).weight;
}

std::string FairShareScheduler::pick(
    const std::vector<std::string>& candidates, common::Seconds now) {
  const Assoc* best = nullptr;
  const std::string* best_id = nullptr;
  double best_priority = 0.0;
  for (const auto& id : candidates) {
    auto it = assocs_.find(id);
    if (it == assocs_.end()) {
      throw common::NotFoundError("FairShareScheduler: unknown tenant " + id);
    }
    const double priority = it->second.weight /
                            (decay_to(it->second, now) + kUsageEpsilon);
    const bool wins =
        best == nullptr || priority > best_priority ||
        (priority == best_priority &&
         (it->second.last_pick < best->last_pick ||
          (it->second.last_pick == best->last_pick && id < *best_id)));
    if (wins) {
      best = &it->second;
      best_id = &id;
      best_priority = priority;
    }
  }
  if (best_id == nullptr) return "";
  assocs_[*best_id].last_pick = ++pick_seq_;
  return *best_id;
}

}  // namespace hoh::tenant
