#pragma once

#include <string>

#include "common/units.h"

/// \file tenant.h
/// Tenant registry types for the multi-tenant submission gateway: who a
/// tenant is (id + fair-share weight) and what it may consume (quota).
/// The pilot abstraction multiplexes many applications over one
/// allocation (Pilot-Abstraction paper, arXiv:1501.05041); the tenant
/// layer is the front door that makes that sharing bounded and fair.

namespace hoh::tenant {

/// Per-tenant admission limits. A zero limit means "unlimited" for that
/// dimension, so a default-constructed quota is a no-op.
struct TenantQuota {
  /// Max units a tenant may have between dispatch and completion.
  /// Over-quota submissions are queued gateway-side, not rejected.
  int max_in_flight_units = 0;

  /// Max cores the tenant's in-flight units may hold together.
  int max_cores = 0;

  /// Token-bucket submit rate (units per simulated second). Submissions
  /// that find the bucket empty are *rejected* (the client is expected
  /// to back off), unlike capacity quotas which queue.
  double submit_rate = 0.0;

  /// Bucket capacity (burst size) for submit_rate.
  double submit_burst = 1.0;
};

/// One registered tenant.
struct TenantSpec {
  std::string id;

  /// Fair-share weight (SLURM association share). Relative: a tenant
  /// with weight 2 is entitled to twice the service of weight 1.
  double share_weight = 1.0;

  TenantQuota quota;
};

/// Deterministic token bucket refilled lazily from the virtual clock —
/// no periodic refill event, so it is free while idle and exact under
/// the discrete-event engine.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst < 1.0 ? 1.0 : burst), tokens_(burst_) {}

  /// True (and consumes one token) when a submission fits the rate.
  /// A zero rate admits everything.
  bool try_take(common::Seconds now) {
    if (rate_ <= 0.0) return true;
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// Current token count (after lazy refill); diagnostic only.
  double tokens(common::Seconds now) {
    refill(now);
    return rate_ <= 0.0 ? burst_ : tokens_;
  }

 private:
  void refill(common::Seconds now) {
    if (now > stamp_) {
      tokens_ += (now - stamp_) * rate_;
      if (tokens_ > burst_) tokens_ = burst_;
    }
    stamp_ = now;
  }

  double rate_ = 0.0;
  double burst_ = 1.0;
  double tokens_ = 1.0;
  common::Seconds stamp_ = 0.0;
};

}  // namespace hoh::tenant
