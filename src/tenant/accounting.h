#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/statistics.h"
#include "common/units.h"

/// \file accounting.h
/// Durable per-tenant usage accounting for the submission gateway:
/// counters (submitted/admitted/rejected/dispatched/completed/failed/
/// preempted), consumed core-seconds, and submission-to-start wait-time
/// statistics with a log10 histogram. Every event is also appended to a
/// JSON journal; a store serialized with to_json() round-trips through
/// from_json() by replaying that journal, which is what makes the
/// accounting durable rather than merely in-memory.

namespace hoh::tenant {

/// Wait-time histogram buckets (seconds): [0,1) [1,10) [10,100)
/// [100,1000) [1000,inf).
constexpr std::size_t kWaitBuckets = 5;
extern const char* const kWaitBucketLabels[kWaitBuckets];
std::size_t wait_bucket(double wait_seconds);

struct TenantUsage {
  std::uint64_t submitted = 0;   // submit() calls seen
  std::uint64_t admitted = 0;    // passed admission (dispatched or queued)
  std::uint64_t rejected = 0;    // refused at admission (rate limit)
  std::uint64_t dispatched = 0;  // handed to the UnitManager
  std::uint64_t started = 0;     // reached Executing
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;      // failed or canceled
  std::uint64_t preempted = 0;
  double core_seconds = 0.0;     // completed units only
  common::RunningStats wait;     // submission-to-start, seconds
  std::array<std::uint64_t, kWaitBuckets> wait_histogram{};
};

class AccountingStore {
 public:
  /// \p keep_journal: record every event for durable serialization.
  /// Disable only for throughput harnesses that never persist.
  explicit AccountingStore(bool keep_journal = true)
      : keep_journal_(keep_journal) {}

  void on_submitted(common::Seconds now, const std::string& tenant,
                    const std::string& unit);
  void on_admitted(common::Seconds now, const std::string& tenant,
                   const std::string& unit, bool queued);
  void on_rejected(common::Seconds now, const std::string& tenant,
                   const std::string& unit, const std::string& reason);
  void on_dispatched(common::Seconds now, const std::string& tenant,
                     const std::string& unit);
  void on_started(common::Seconds now, const std::string& tenant,
                  const std::string& unit, double wait_seconds);
  void on_completed(common::Seconds now, const std::string& tenant,
                    const std::string& unit, double core_seconds);
  void on_failed(common::Seconds now, const std::string& tenant,
                 const std::string& unit);
  void on_preempted(common::Seconds now, const std::string& tenant,
                    const std::string& unit);

  /// Throws NotFoundError for a tenant never seen.
  const TenantUsage& usage(const std::string& tenant) const;
  const std::map<std::string, TenantUsage>& tenants() const {
    return tenants_;
  }

  /// Every wait sample across tenants, in event order (percentiles).
  const std::vector<double>& wait_samples() const { return wait_samples_; }

  /// {"schema", "tenants": {...aggregates...}, "journal": [...]}.
  common::Json to_json(bool include_journal = true) const;

  /// Rebuilds a store by replaying the serialized journal; aggregates
  /// (including the streaming wait stats) come out identical.
  static AccountingStore from_json(const common::Json& doc);

  /// Writes to_json() (with journal) to \p path, pretty-printed.
  void write_json(const std::string& path) const;

 private:
  void journal_event(common::Seconds now, const char* event,
                     const std::string& tenant, const std::string& unit,
                     common::JsonObject extra = {});

  bool keep_journal_;
  std::map<std::string, TenantUsage> tenants_;
  common::JsonArray journal_;
  std::vector<double> wait_samples_;
};

/// Jain's fairness index over per-tenant service: (Σx)² / (n·Σx²).
/// 1.0 = perfectly even; 1/n = one tenant got everything. Empty or
/// all-zero input returns 1.0 (nothing was unfair about serving nobody).
double jains_index(const std::vector<double>& service);

}  // namespace hoh::tenant
