#include "tenant/accounting.h"

#include <fstream>

#include "common/error.h"

namespace hoh::tenant {

const char* const kWaitBucketLabels[kWaitBuckets] = {
    "lt_1s", "lt_10s", "lt_100s", "lt_1000s", "ge_1000s"};

std::size_t wait_bucket(double wait_seconds) {
  if (wait_seconds < 1.0) return 0;
  if (wait_seconds < 10.0) return 1;
  if (wait_seconds < 100.0) return 2;
  if (wait_seconds < 1000.0) return 3;
  return 4;
}

void AccountingStore::journal_event(common::Seconds now, const char* event,
                                    const std::string& tenant,
                                    const std::string& unit,
                                    common::JsonObject extra) {
  if (!keep_journal_) return;
  extra["t"] = now;
  extra["event"] = event;
  extra["tenant"] = tenant;
  extra["unit"] = unit;
  // emplace_back: constructing the Json in place (not moving a temporary
  // variant) sidesteps GCC 12's bogus -Wmaybe-uninitialized on the
  // inlined variant move (same family as bug 105651, see CMakeLists).
  journal_.emplace_back(std::move(extra));
}

void AccountingStore::on_submitted(common::Seconds now,
                                   const std::string& tenant,
                                   const std::string& unit) {
  tenants_[tenant].submitted += 1;
  journal_event(now, "submitted", tenant, unit);
}

void AccountingStore::on_admitted(common::Seconds now,
                                  const std::string& tenant,
                                  const std::string& unit, bool queued) {
  tenants_[tenant].admitted += 1;
  journal_event(now, "admitted", tenant, unit, {{"queued", queued}});
}

void AccountingStore::on_rejected(common::Seconds now,
                                  const std::string& tenant,
                                  const std::string& unit,
                                  const std::string& reason) {
  tenants_[tenant].rejected += 1;
  journal_event(now, "rejected", tenant, unit, {{"reason", reason}});
}

void AccountingStore::on_dispatched(common::Seconds now,
                                    const std::string& tenant,
                                    const std::string& unit) {
  tenants_[tenant].dispatched += 1;
  journal_event(now, "dispatched", tenant, unit);
}

void AccountingStore::on_started(common::Seconds now,
                                 const std::string& tenant,
                                 const std::string& unit,
                                 double wait_seconds) {
  TenantUsage& usage = tenants_[tenant];
  usage.started += 1;
  usage.wait.add(wait_seconds);
  usage.wait_histogram[wait_bucket(wait_seconds)] += 1;
  wait_samples_.push_back(wait_seconds);
  journal_event(now, "started", tenant, unit, {{"wait", wait_seconds}});
}

void AccountingStore::on_completed(common::Seconds now,
                                   const std::string& tenant,
                                   const std::string& unit,
                                   double core_seconds) {
  TenantUsage& usage = tenants_[tenant];
  usage.completed += 1;
  usage.core_seconds += core_seconds;
  journal_event(now, "completed", tenant, unit,
                {{"core_seconds", core_seconds}});
}

void AccountingStore::on_failed(common::Seconds now,
                                const std::string& tenant,
                                const std::string& unit) {
  tenants_[tenant].failed += 1;
  journal_event(now, "failed", tenant, unit);
}

void AccountingStore::on_preempted(common::Seconds now,
                                   const std::string& tenant,
                                   const std::string& unit) {
  tenants_[tenant].preempted += 1;
  journal_event(now, "preempted", tenant, unit);
}

const TenantUsage& AccountingStore::usage(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    throw common::NotFoundError("AccountingStore: unknown tenant " + tenant);
  }
  return it->second;
}

common::Json AccountingStore::to_json(bool include_journal) const {
  common::Json doc;
  doc["schema"] = "hoh-tenant-accounting-v1";
  common::JsonObject tenants;
  for (const auto& [id, usage] : tenants_) {
    common::Json t;
    t["submitted"] = usage.submitted;
    t["admitted"] = usage.admitted;
    t["rejected"] = usage.rejected;
    t["dispatched"] = usage.dispatched;
    t["started"] = usage.started;
    t["completed"] = usage.completed;
    t["failed"] = usage.failed;
    t["preempted"] = usage.preempted;
    t["core_seconds"] = usage.core_seconds;
    common::Json wait;
    wait["count"] = usage.wait.count();
    wait["mean"] = usage.wait.mean();
    wait["min"] = usage.wait.min();
    wait["max"] = usage.wait.max();
    t["wait"] = std::move(wait);
    common::JsonObject histogram;
    for (std::size_t b = 0; b < kWaitBuckets; ++b) {
      histogram[kWaitBucketLabels[b]] = usage.wait_histogram[b];
    }
    t["wait_histogram"] = common::Json(std::move(histogram));
    tenants[id] = std::move(t);
  }
  doc["tenants"] = common::Json(std::move(tenants));
  if (include_journal && keep_journal_) doc["journal"] = journal_;
  return doc;
}

AccountingStore AccountingStore::from_json(const common::Json& doc) {
  if (!doc.contains("journal") || !doc.at("journal").is_array()) {
    throw common::ConfigError(
        "AccountingStore::from_json needs a \"journal\" array");
  }
  AccountingStore store(/*keep_journal=*/true);
  for (const auto& entry : doc.at("journal").as_array()) {
    const double t = entry.at("t").as_number();
    const std::string& event = entry.at("event").as_string();
    const std::string& tenant = entry.at("tenant").as_string();
    const std::string& unit = entry.at("unit").as_string();
    if (event == "submitted") {
      store.on_submitted(t, tenant, unit);
    } else if (event == "admitted") {
      store.on_admitted(t, tenant, unit, entry.at("queued").as_bool());
    } else if (event == "rejected") {
      store.on_rejected(t, tenant, unit, entry.at("reason").as_string());
    } else if (event == "dispatched") {
      store.on_dispatched(t, tenant, unit);
    } else if (event == "started") {
      store.on_started(t, tenant, unit, entry.at("wait").as_number());
    } else if (event == "completed") {
      store.on_completed(t, tenant, unit,
                         entry.at("core_seconds").as_number());
    } else if (event == "failed") {
      store.on_failed(t, tenant, unit);
    } else if (event == "preempted") {
      store.on_preempted(t, tenant, unit);
    } else {
      throw common::ConfigError("AccountingStore: unknown journal event " +
                                event);
    }
  }
  return store;
}

void AccountingStore::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw common::StateError("AccountingStore: cannot write " + path);
  }
  out << to_json().dump(2) << "\n";
}

double jains_index(const std::vector<double>& service) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : service) {
    sum += x;
    sum_sq += x * x;
  }
  if (service.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(service.size()) * sum_sq);
}

}  // namespace hoh::tenant
